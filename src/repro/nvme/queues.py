"""NVMe submission / completion queue rings.

Both rings live in *host* memory (the device reaches them by DMA), exactly
as on the paper's testbed.  The host owns the SQ tail and CQ head; the
device owns the SQ head (reported back through CQEs) and CQ tail.

Ordering discipline (paper §3.3.2, challenge #2): the Linux NVMe driver
serialises SQ insertion with a per-queue spinlock.  ByteExpress relies on
inserting the command *and* its inline chunks under one lock acquisition so
they occupy consecutive slots.  :class:`QueueLock` models that lock and the
submission queue refuses writes when it is not held, turning a would-be
race into a hard test failure.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.host.memory import HostMemory
from repro.nvme.completion import NvmeCompletion
from repro.nvme.constants import CQE_SIZE, SQE_SIZE


class QueueFullError(Exception):
    """Raised when pushing to a submission queue with no free slots."""


class CqOverrunError(Exception):
    """Raised when a completion would overwrite an unconsumed CQE.

    The CQ has no full/empty doorbell handshake of its own — the
    producer must bound itself by the consumer's progress.  Posting a
    ``depth+1``-th unconsumed entry silently destroys a live completion
    (the host would never learn its command finished), so both the
    host-side ring model here and the controller's device-side producer
    state refuse it loudly.
    """


class LockNotHeldError(Exception):
    """Raised when the SQ is mutated outside its lock (ordering violation)."""


class QueueLock:
    """Non-reentrant per-queue lock, as in the kernel driver.

    The simulation is single-threaded; the lock exists to *assert* the
    driver's locking discipline rather than to provide mutual exclusion.
    """

    def __init__(self) -> None:
        self._held = False
        self.acquisitions = 0

    @property
    def held(self) -> bool:
        return self._held

    def __enter__(self) -> "QueueLock":
        if self._held:
            raise RuntimeError("SQ lock is not reentrant")
        self._held = True
        self.acquisitions += 1
        return self

    def __exit__(self, *exc: object) -> None:
        self._held = False


class SubmissionQueue:
    """Host-side view of one submission queue ring."""

    def __init__(self, qid: int, depth: int, memory: HostMemory) -> None:
        if depth < 2:
            raise ValueError("SQ depth must be at least 2")
        self.qid = qid
        self.depth = depth
        self.memory = memory
        self.base_addr = memory.alloc_buffer(depth * SQE_SIZE)
        self.tail = 0          # next free slot (host-owned)
        self.head = 0          # last slot the device reported consuming
        #: Device-visible tail, updated only by the doorbell write.
        self.shadow_tail = 0
        self.lock = QueueLock()

    # -- geometry ----------------------------------------------------------
    def slot_addr(self, index: int) -> int:
        return self.base_addr + (index % self.depth) * SQE_SIZE

    def space(self) -> int:
        """Free slots (one slot is always kept open to distinguish full)."""
        return (self.head - self.tail - 1) % self.depth

    def is_full(self) -> bool:
        return self.space() == 0

    # -- host operations -----------------------------------------------------
    def push_raw(self, entry: bytes) -> int:
        """Write one 64 B entry at the tail; returns the slot index used.

        Requires the queue lock to be held — this is the invariant that
        makes ByteExpress's consecutive-slot layout sound.
        """
        if not self.lock.held:
            raise LockNotHeldError(f"SQ{self.qid} written without its lock")
        if len(entry) != SQE_SIZE:
            raise ValueError(f"SQ entries are {SQE_SIZE} bytes")
        slot = self.tail
        depth = self.depth
        if (self.head - slot - 1) % depth == 0:
            raise QueueFullError(f"SQ{self.qid} full (depth {depth})")
        self.memory.write(self.base_addr + (slot % depth) * SQE_SIZE, entry)
        self.tail = (slot + 1) % depth
        return slot

    def ring_doorbell(self) -> int:
        """Publish the current tail to the device; returns the new value.

        Requires the queue lock, like ``push_raw``: the kernel driver
        writes the doorbell inside the same spinlock acquisition that
        inserted the entries, so a ByteExpress CMD+chunk sequence can
        never be published mid-insertion (paper §3 ordering argument).
        """
        if not self.lock.held:
            raise LockNotHeldError(
                f"SQ{self.qid} doorbell rung without its lock")
        self.shadow_tail = self.tail
        return self.shadow_tail

    def note_sq_head(self, head: int) -> None:
        """Apply the SQ-head report from a CQE, freeing consumed slots.

        CQEs processed out of order (or replayed after a fault) can carry
        a head value *older* than one already applied.  Accepting it would
        move ``head`` backwards, inflate :meth:`space`, and let
        ``push_raw`` overwrite slots the device has not consumed — so any
        report outside the current in-flight window ``(head .. tail]`` is
        ignored as stale.
        """
        if not 0 <= head < self.depth:
            raise ValueError(f"SQ head {head} out of range")
        if (head - self.head) % self.depth > (self.tail - self.head) % self.depth:
            return  # stale/backwards report from out-of-order completion
        self.head = head

    # -- device operations --------------------------------------------------
    def device_pending(self, device_head: int) -> int:
        """Entries between the device's head and the doorbell'd tail."""
        return (self.shadow_tail - device_head) % self.depth

    # -- persistence (repro.durability) --------------------------------------
    def snapshot(self) -> object:
        """Self-contained ring image: pointers plus the SQE slot bytes."""
        state: Dict[str, object] = {
            "tail": self.tail,
            "head": self.head,
            "shadow_tail": self.shadow_tail,
            "ring": self.memory.read(self.base_addr,
                                     self.depth * SQE_SIZE),
        }
        return state

    def restore(self, state: object) -> None:
        assert isinstance(state, dict)
        self.tail = int(state["tail"])  # type: ignore[arg-type]
        self.head = int(state["head"])  # type: ignore[arg-type]
        self.shadow_tail = int(state["shadow_tail"])  # type: ignore[arg-type]
        ring = state["ring"]
        assert isinstance(ring, bytes)
        self.memory.write(self.base_addr, ring)

    def scrub(self) -> None:
        """Power-loss wipe: pointers to reset values, slots zeroed.

        In place — ``base_addr`` and the lock object survive, so a
        recovered rig re-uses the ring it carved at bring-up instead of
        leaking a fresh allocation per reset.
        """
        self.tail = 0
        self.head = 0
        self.shadow_tail = 0
        self.memory.write(self.base_addr, bytes(self.depth * SQE_SIZE))


class CompletionQueue:
    """Host-side view of one completion queue ring with phase-bit protocol."""

    def __init__(self, qid: int, depth: int, memory: HostMemory) -> None:
        if depth < 2:
            raise ValueError("CQ depth must be at least 2")
        self.qid = qid
        self.depth = depth
        self.memory = memory
        self.base_addr = memory.alloc_buffer(depth * CQE_SIZE)
        self.head = 0          # host consume pointer
        self.phase = 1         # phase the host expects for new entries
        #: Device-side producer state.
        self.device_tail = 0
        self.device_phase = 1
        #: Posted-but-unconsumed completions currently in the ring.
        #: The phase-bit protocol lets the ring hold *depth* of them
        #: (no slot is sacrificed); one more would overwrite a live CQE.
        self.outstanding = 0

    def slot_addr(self, index: int) -> int:
        return self.base_addr + (index % self.depth) * CQE_SIZE

    # -- device operations ---------------------------------------------------
    def device_post(self, cqe: NvmeCompletion) -> int:
        """Device writes a completion at its tail; returns the slot used.

        Refuses to overwrite an unconsumed CQE: with ``depth`` entries
        already posted and none polled, the next write would land on a
        completion the host has not seen yet and lose it silently
        (the bug class the PR 4 protocol monitor was built to catch).
        """
        if self.outstanding >= self.depth:
            raise CqOverrunError(
                f"CQ{self.qid} overrun: {self.outstanding} unconsumed "
                f"CQEs already fill the {self.depth}-deep ring")
        cqe.phase = self.device_phase
        slot = self.device_tail
        self.memory.write(self.slot_addr(slot), cqe.pack())
        self.device_tail = (self.device_tail + 1) % self.depth
        if self.device_tail == 0:
            self.device_phase ^= 1
        self.outstanding += 1
        return slot

    # -- host operations -----------------------------------------------------
    def peek(self) -> Optional[NvmeCompletion]:
        """Read the next completion without consuming it; None if empty.

        The completion reactor uses this to decide whether a CQ has work
        before paying per-CQE handling costs — the phase-bit check is the
        only host-side signal that a new entry has landed.
        """
        raw = self.memory.read(self.slot_addr(self.head), CQE_SIZE)
        # Phase bit lives in bit 0 of DW3's high half-word (byte 14):
        # check it on the raw bytes so an empty slot costs no CQE object.
        if (raw[14] & 1) != self.phase:
            return None
        return NvmeCompletion.unpack(raw)

    def poll(self) -> Optional[NvmeCompletion]:
        """Consume the next completion if its phase bit matches; else None."""
        cqe = self.peek()
        if cqe is None:
            return None
        self.head = (self.head + 1) % self.depth
        if self.head == 0:
            self.phase ^= 1
        if self.outstanding > 0:
            self.outstanding -= 1
        return cqe

    def drain(self, limit: Optional[int] = None) -> List[NvmeCompletion]:
        """Consume all currently visible completions (up to *limit*)."""
        out: List[NvmeCompletion] = []
        while limit is None or len(out) < limit:
            cqe = self.poll()
            if cqe is None:
                break
            out.append(cqe)
        return out

    # -- persistence (repro.durability) --------------------------------------
    def snapshot(self) -> object:
        """Ring image: both phase bits, both pointers, the CQE bytes."""
        state: Dict[str, object] = {
            "head": self.head,
            "phase": self.phase,
            "device_tail": self.device_tail,
            "device_phase": self.device_phase,
            "outstanding": self.outstanding,
            "ring": self.memory.read(self.base_addr,
                                     self.depth * CQE_SIZE),
        }
        return state

    def restore(self, state: object) -> None:
        assert isinstance(state, dict)
        self.head = int(state["head"])  # type: ignore[arg-type]
        self.phase = int(state["phase"])  # type: ignore[arg-type]
        self.device_tail = int(state["device_tail"])  # type: ignore[arg-type]
        self.device_phase = int(state["device_phase"])  # type: ignore[arg-type]
        self.outstanding = int(state["outstanding"])  # type: ignore[arg-type]
        ring = state["ring"]
        assert isinstance(ring, bytes)
        self.memory.write(self.base_addr, ring)

    def scrub(self) -> None:
        """Power-loss wipe in place: reset phase protocol, zero slots."""
        self.head = 0
        self.phase = 1
        self.device_tail = 0
        self.device_phase = 1
        self.outstanding = 0
        self.memory.write(self.base_addr, bytes(self.depth * CQE_SIZE))
