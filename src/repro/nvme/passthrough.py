"""NVMe passthrough request model (the `nvme_passthru_cmd` ioctl analogue).

KV-SSDs and CSDs talk to the device through passthrough (paper §2.1):
user-level APIs encode high-level operations as custom NVMe commands and
hand them to the driver, bypassing the block layer.  This module defines
the request/response records exchanged across that boundary; the driver
(:mod:`repro.host.driver`) implements the submission itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.nvme.constants import DEFAULT_NSID, StatusCode


@dataclass
class PassthruRequest:
    """Mirror of ``struct nvme_passthru_cmd``: a raw command plus a user
    data buffer the driver must map for the transfer."""

    opcode: int
    nsid: int = DEFAULT_NSID
    #: Host→device payload for writes; None for data-less commands.
    data: Optional[bytes] = None
    #: Expected device→host transfer length for reads.
    read_len: int = 0
    cdw10: int = 0
    cdw11: int = 0
    cdw12: int = 0
    cdw13: int = 0
    cdw14: int = 0
    cdw15: int = 0

    def __post_init__(self) -> None:
        if self.data is not None and self.read_len:
            raise ValueError("a passthrough command is either a write or a read")
        if self.read_len < 0:
            raise ValueError("negative read length")

    @property
    def is_write(self) -> bool:
        return self.data is not None

    @property
    def data_len(self) -> int:
        return len(self.data) if self.data is not None else self.read_len


@dataclass
class PassthruResult:
    """Completion surfaced back through the ioctl."""

    status: int
    result: int = 0
    #: Device→host data for read-style commands.
    data: Optional[bytes] = None
    #: End-to-end simulated latency of this command (ns).
    latency_ns: float = 0.0
    #: PCIe bytes attributable to this command (both directions).
    pcie_bytes: int = 0

    @property
    def ok(self) -> bool:
        return self.status == StatusCode.SUCCESS
