"""Host NVMe driver model (the ``nvme_queue_rq`` / passthrough layer).

Owns the queue pairs, the per-queue submission locks, PRP/SGL construction,
doorbell writes and completion handling — the pieces of the Linux driver
the paper touches.  The ByteExpress change is confined to
:func:`repro.core.driver_ext.submit_with_inline_payload`, mirroring the
paper's <30-line ``nvme_queue_rq`` patch; everything else here is the
stock driver behaviour.

Synchronous semantics: ``passthru`` and the lower-level submit/wait pair
model the NVMe passthrough ioctl used by KV-SSD and CSD user libraries
(paper §2.1) at queue depth 1, which is how the paper's microbenchmarks
issue their 1 M operations.

Error recovery: ``passthru`` runs a retry/timeout/backoff loop.  A
command that produces no completion (lost doorbell, dropped CQE) times
out, gets its doorbell re-rung, and is resubmitted with exponential
backoff until the per-command deadline; completions whose DNR bit is
clear (transient transfer faults) are retried the same way.  After
``threshold`` consecutive inline failures a :class:`CircuitBreaker`
downgrades ByteExpress submissions to the PRP baseline until a probe
succeeds — fault-tolerant, merely slower.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.core.driver_ext import submit_plain
from repro.datapath import names as dp_names
from repro.durability.domains import DEVICE_VOLATILE, HOST_VOLATILE
from repro.datapath import registry as datapath_registry
from repro.datapath.spec import DatapathSpec
from repro.faults.plan import DROP_DOORBELL
from repro.host.breaker import CircuitBreaker
from repro.host.shadow import MAX_QID, ShadowDoorbells
from repro.pcie.traffic import (
    EVT_BREAKER_TRIP,
    EVT_INLINE_FALLBACK,
    EVT_RETRY,
    EVT_TIMEOUT,
)
from repro.nvme.command import NvmeCommand
from repro.nvme.completion import NvmeCompletion
from repro.nvme.constants import (
    CQE_SIZE,
    DEFAULT_NSID,
    PAGE_SIZE,
    SQE_SIZE,
    AdminOpcode,
    StatusCode,
)
from repro.nvme.identify import IDENTIFY_SIZE, IdentifyController
from repro.nvme.passthrough import PassthruRequest, PassthruResult
from repro.nvme.prp import build_prps
from repro.nvme.queues import CompletionQueue, SubmissionQueue
from repro.nvme.registers import (
    CC_ENABLE,
    CSTS_READY,
    REG_ACQ_LO,
    REG_AQA,
    REG_ASQ_LO,
    REG_CC,
    REG_CSTS,
    aqa_value,
)
from repro.pcie.mmio import cq_doorbell_offset, sq_doorbell_offset
from repro.sim.config import DOORBELL_SHADOW
from repro.pcie.traffic import CAT_DOORBELL
from repro.ssd.device import OpenSsd


class DriverError(Exception):
    """Driver-level failures (no completion, bad arguments)."""


class CommandTimeoutError(DriverError):
    """A command exhausted its retry budget or per-command deadline."""


@dataclass(frozen=True)
class RetryPolicy:
    """Host-side recovery knobs for one passthrough command.

    Backoff is exponential in simulated time: attempt *n* (1-based)
    sleeps ``backoff_base_ns * backoff_multiplier**(n-1)`` before its
    resubmission.  ``deadline_ns`` bounds the whole command, attempts
    and backoffs included, from first submission.
    """

    max_attempts: int = 5
    backoff_base_ns: float = 2_000.0
    backoff_multiplier: float = 2.0
    deadline_ns: float = 10_000_000.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.backoff_base_ns < 0 or self.backoff_multiplier < 1.0:
            raise ValueError("backoff must be non-negative and non-shrinking")

    def backoff_ns(self, attempt: int) -> float:
        """Backoff before resubmission number *attempt* (1-based)."""
        return self.backoff_base_ns * self.backoff_multiplier ** (attempt - 1)


@dataclass
class _QueueResources:
    sq: SubmissionQueue
    cq: CompletionQueue
    #: Reusable page-aligned data buffer (sync QD=1 makes reuse safe).
    scratch: int
    scratch_pages: int
    next_cid: int = 0
    #: CIDs currently in flight on this queue.  At QD>1 a CID may not be
    #: reused until its completion arrives (or the host abandons the
    #: command) — a reused CID would make two outstanding commands
    #: indistinguishable in the CQ.
    live_cids: Set[int] = field(default_factory=set)
    #: Quarantined CIDs of *abandoned* commands.  Abandoning releases a
    #: CID the device may still complete (its SQE can sit unfetched
    #: behind a dropped doorbell, or its CQE can arrive late): handing
    #: the CID out again inside that window would let the old command's
    #: CQE resolve the new command.  Zombies stay unallocatable until
    #: their late CQE arrives or the queue fully drains (PR 4 monitor
    #: finding, INV_CID_UNIQUE).
    zombie_cids: Set[int] = field(default_factory=set)
    #: Host pages (PRP/SGL list pages, private data buffers) to release
    #: when the owning CID retires — keyed per CID so that out-of-order
    #: completions at QD>1 free exactly their own pages.
    pending_pages: Dict[int, List[int]] = field(default_factory=dict)


#: Scratch buffer size per queue (covers the largest microbench transfer).
_SCRATCH_BYTES = 64 * 1024


@dataclass
class BatchResult:
    """Outcome of one batched submission."""

    ops: int
    elapsed_ns: float
    pcie_bytes: int
    statuses: List[int]

    @property
    def ok(self) -> bool:
        return all(s == StatusCode.SUCCESS for s in self.statuses)

    @property
    def mean_latency_ns(self) -> float:
        return self.elapsed_ns / self.ops if self.ops else 0.0


#: Admin queue depth used during bring-up.
_ADMIN_DEPTH = 64


class NvmeDriver:
    """The host half of the stack.

    Construction performs the real NVMe bring-up sequence: allocate the
    admin queue pair, program AQA/ASQ/ACQ, set CC.EN and wait for
    CSTS.RDY, Identify the controller, then create each I/O queue pair
    through Create-CQ/Create-SQ admin commands.
    """

    def __init__(self, ssd: OpenSsd, retry_policy: Optional[RetryPolicy] = None,
                 breaker: Optional[CircuitBreaker] = None) -> None:
        self.ssd = ssd
        self.clock = ssd.clock
        self.timing = ssd.config.timing
        self.link = ssd.link
        self.memory = ssd.host_memory
        self.faults = ssd.faults
        self.retry_policy = retry_policy or RetryPolicy()
        self.breaker = breaker or CircuitBreaker()
        # recovery stats
        self.retries = 0
        self.timeouts = 0
        self.inline_fallbacks = 0
        #: Shadow-doorbell pages (None in stock MMIO mode).
        self.shadow: Optional[ShadowDoorbells] = None
        self.shadow_rings = 0
        self.shadow_wakes = 0
        self._queues: Dict[int, _QueueResources] = {}
        self._admin = self._make_resources(0, _ADMIN_DEPTH, _ADMIN_DEPTH)
        # Persistence domains: the driver's in-flight command table is
        # host-volatile; SQ/CQ ring *contents* belong to the device's
        # volatile domain (the rings are the protocol's shared state —
        # a power cut tears both sides at once).
        ssd.durability.register("host.driver", HOST_VOLATILE, self)
        ssd.durability.register("nvme.sq0", DEVICE_VOLATILE, self._admin.sq)
        ssd.durability.register("nvme.cq0", DEVICE_VOLATILE, self._admin.cq)
        self._enable_controller()
        self.identify = self._identify_controller()
        for qid in range(1, ssd.config.num_io_queues + 1):
            self._create_io_queue_pair(qid)
        if ssd.config.doorbell_mode == DOORBELL_SHADOW:
            self._setup_shadow_doorbells()

    # ------------------------------------------------------------------
    # bring-up
    # ------------------------------------------------------------------
    def _make_resources(self, qid: int, sq_depth: int,
                        cq_depth: int) -> _QueueResources:
        sq = SubmissionQueue(qid, sq_depth, self.memory)
        cq = CompletionQueue(qid, cq_depth, self.memory)
        scratch_pages = _SCRATCH_BYTES // PAGE_SIZE
        scratch = self.memory.alloc_pages(scratch_pages)[0]
        return _QueueResources(sq, cq, scratch, scratch_pages)

    def _enable_controller(self) -> None:
        bar = self.ssd.bar
        bar.write32(REG_AQA, aqa_value(_ADMIN_DEPTH, _ADMIN_DEPTH))
        bar.write32(REG_ASQ_LO, self._admin.sq.base_addr)
        bar.write32(REG_ACQ_LO, self._admin.cq.base_addr)
        for reg in (REG_AQA, REG_ASQ_LO, REG_ACQ_LO):
            self.link.host_mmio_write(4, CAT_DOORBELL)
        bar.write32(REG_CC, CC_ENABLE)
        self.link.host_mmio_write(4, CAT_DOORBELL)
        if not bar.read32(REG_CSTS) & CSTS_READY:
            raise DriverError("controller failed to come ready (CSTS.RDY=0)")

    def _admin_command(self, cmd: NvmeCommand,
                       read_len: int = 0) -> NvmeCompletion:
        """Submit one admin command synchronously."""
        res = self._admin
        cmd.cid = self._alloc_cid(res)
        if read_len:
            if read_len > res.scratch_pages * PAGE_SIZE:
                raise DriverError("admin read exceeds scratch buffer")
            cmd.prp1 = res.scratch
        with res.sq.lock:
            with self.clock.span("drv.sq_submit"):
                submit_plain(res.sq, cmd, self.clock, self.timing)
            self._ring_sq_doorbell(res)
        for _ in range(3):
            cqe = self._try_wait_on(res)
            if cqe is not None:
                return cqe
            # Lost admin doorbell (bring-up must survive a flaky link):
            # republish the tail and give the device another turn.
            with res.sq.lock:
                self._ring_sq_doorbell(res)
        return self._wait_on(res)

    def _identify_controller(self) -> IdentifyController:
        cmd = NvmeCommand(opcode=AdminOpcode.IDENTIFY, cdw10=1)
        cqe = self._admin_command(cmd, read_len=IDENTIFY_SIZE)
        if not cqe.ok:
            raise DriverError(f"IDENTIFY failed with status {cqe.status:#x}")
        return IdentifyController.unpack(
            self.memory.read(self._admin.scratch, IDENTIFY_SIZE))

    def _create_io_queue_pair(self, qid: int,
                              sq_depth: Optional[int] = None,
                              cq_depth: Optional[int] = None) -> None:
        if qid > self.identify.num_io_queues:
            raise DriverError(
                f"controller supports {self.identify.num_io_queues} I/O "
                f"queues, cannot create qid {qid}")
        res = self._make_resources(qid, sq_depth or self.ssd.config.sq_depth,
                                   cq_depth or self.ssd.config.cq_depth)
        create_cq = NvmeCommand(
            opcode=AdminOpcode.CREATE_CQ, prp1=res.cq.base_addr,
            cdw10=qid | ((res.cq.depth - 1) << 16), cdw11=0b11)
        cqe = self._admin_command(create_cq)
        if not cqe.ok:
            raise DriverError(f"CREATE_CQ {qid} failed: {cqe.status:#x}")
        create_sq = NvmeCommand(
            opcode=AdminOpcode.CREATE_SQ, prp1=res.sq.base_addr,
            cdw10=qid | ((res.sq.depth - 1) << 16),
            cdw11=0b1 | (qid << 16))
        cqe = self._admin_command(create_sq)
        if not cqe.ok:
            raise DriverError(f"CREATE_SQ {qid} failed: {cqe.status:#x}")
        self._queues[qid] = res
        self.ssd.durability.register(f"nvme.sq{qid}", DEVICE_VOLATILE, res.sq)
        self.ssd.durability.register(f"nvme.cq{qid}", DEVICE_VOLATILE, res.cq)

    # ------------------------------------------------------------------
    # queue-pair lifecycle (runtime — repro.virt tenant provisioning)
    # ------------------------------------------------------------------
    def create_io_queue_pair(self, qid: Optional[int] = None,
                             sq_depth: Optional[int] = None,
                             cq_depth: Optional[int] = None) -> int:
        """Create an I/O queue pair at runtime; returns its qid.

        Same Create-CQ/Create-SQ admin sequence as bring-up.  *qid*
        defaults to the next free id; depths default to the rig config.
        Under shadow doorbells the qid must fit the shadow page's slot
        array (``MAX_QID``) — scale-out rigs use MMIO doorbells.
        """
        if qid is None:
            qid = max(self._queues, default=0) + 1
        if qid < 1:
            raise DriverError("I/O queue ids start at 1")
        if qid in self._queues:
            raise DriverError(f"I/O queue {qid} already exists")
        if self.shadow is not None and qid > MAX_QID:
            raise DriverError(
                f"qid {qid} exceeds the shadow-doorbell slot array "
                f"(MAX_QID={MAX_QID}); use MMIO doorbells to scale past it")
        self._create_io_queue_pair(qid, sq_depth=sq_depth, cq_depth=cq_depth)
        return qid

    def delete_io_queue_pair(self, qid: int) -> None:
        """Tear down I/O queue pair *qid*: Delete-SQ then Delete-CQ admin
        commands, then release every host resource the pair pinned —
        ring pages, the scratch buffer, per-CID pinned pages, CID state,
        and (under shadow doorbells) the pair's shadow slots, so a later
        reuse of the qid starts from a clean slate.
        """
        res = self.queue(qid)
        if res.live_cids:
            raise DriverError(
                f"queue {qid} still has {len(res.live_cids)} command(s) "
                f"in flight")
        for opcode, name in ((AdminOpcode.DELETE_SQ, "DELETE_SQ"),
                             (AdminOpcode.DELETE_CQ, "DELETE_CQ")):
            cqe = self._admin_command(NvmeCommand(opcode=opcode, cdw10=qid))
            if not cqe.ok:
                raise DriverError(f"{name} {qid} failed: {cqe.status:#x}")
        del self._queues[qid]
        self.ssd.durability.unregister(f"nvme.sq{qid}")
        self.ssd.durability.unregister(f"nvme.cq{qid}")
        # No completion can arrive for this queue anymore: quarantined
        # (zombie) CIDs die with it, and their pinned pages are released.
        for pages in res.pending_pages.values():
            for page in pages:
                self.memory.free_page(page)
        self._free_buffer(res.sq.base_addr, res.sq.depth * SQE_SIZE)
        self._free_buffer(res.cq.base_addr, res.cq.depth * CQE_SIZE)
        self._free_buffer(res.scratch, res.scratch_pages * PAGE_SIZE)
        if self.shadow is not None and qid <= MAX_QID:
            # Zero the slots: a reused qid must not inherit a stale tail.
            self.shadow.write_sq_tail(qid, 0)
            self.shadow.write_cq_head(qid, 0)
            self.shadow.write_sq_eventidx(qid, 0)

    def _free_buffer(self, base: int, nbytes: int) -> None:
        """Release a page-aligned buffer allocated with ``alloc_buffer``."""
        for i in range(max(1, (nbytes + PAGE_SIZE - 1) // PAGE_SIZE)):
            self.memory.free_page(base + i * PAGE_SIZE)

    def _setup_shadow_doorbells(self) -> None:
        """Arm shadow doorbells: allocate the shadow + eventidx pages
        and register them with a Doorbell Buffer Config admin command.

        After this, I/O doorbell updates become plain host-memory stores
        the controller DMA-reads on its next wake-up; a BAR write
        survives only as the wake path for a parked device.  The admin
        queue keeps MMIO doorbells throughout.
        """
        shadow = ShadowDoorbells(self.memory)
        cmd = NvmeCommand(opcode=AdminOpcode.DBBUF_CONFIG,
                          prp1=shadow.shadow_addr,
                          prp2=shadow.eventidx_addr)
        cqe = self._admin_command(cmd)
        if not cqe.ok:
            raise DriverError(
                f"DBBUF_CONFIG failed with status {cqe.status:#x}")
        self.shadow = shadow
        self.ssd.durability.register("host.shadow", HOST_VOLATILE, shadow)

    # ------------------------------------------------------------------
    # persistence (repro.durability)
    # ------------------------------------------------------------------
    # The driver's own volatile surface is the in-flight command table:
    # per-queue CID allocation, zombie quarantine, pinned-page tracking.
    # Queue ring contents have their own registrations (nvme.sq*/cq*).

    def _all_resources(self) -> List[Tuple[int, _QueueResources]]:
        return [(0, self._admin)] + sorted(self._queues.items())

    def snapshot(self) -> object:
        return {qid: (res.next_cid, set(res.live_cids),
                      set(res.zombie_cids),
                      {cid: list(p) for cid, p in res.pending_pages.items()})
                for qid, res in self._all_resources()}

    def restore(self, state: object) -> None:
        assert isinstance(state, dict)
        for qid, res in self._all_resources():
            if qid not in state:
                continue
            next_cid, live, zombie, pending = state[qid]
            res.next_cid = next_cid
            res.live_cids = set(live)
            res.zombie_cids = set(zombie)
            res.pending_pages = {cid: list(p) for cid, p in pending.items()}

    def scrub(self) -> None:
        """Power cut: the in-flight table is gone; nothing is pinned
        anymore (the pages themselves are zeroed by the host-memory
        scrub — there is no one left to free them to)."""
        for _qid, res in self._all_resources():
            res.next_cid = 0
            res.live_cids.clear()
            res.zombie_cids.clear()
            res.pending_pages.clear()

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    @property
    def io_qids(self) -> List[int]:
        return sorted(self._queues)

    def queue(self, qid: int) -> _QueueResources:
        try:
            return self._queues[qid]
        except KeyError:
            raise DriverError(f"no such I/O queue: {qid}")

    def _alloc_cid(self, res: _QueueResources, track: bool = True) -> int:
        """Hand out the next CID that is not in flight on this queue.

        A CID identifies an outstanding command; reusing one before its
        completion arrives would make the matching CQE ambiguous, so live
        CIDs are skipped.  Exhaustion (the whole 16-bit space in flight)
        raises instead of silently aliasing — it indicates a leak or a
        pathological queue depth, never a condition to paper over.

        *track=False* hands out a CID without marking it live: for
        commands that by protocol produce no completion of their own
        (BandSlim intermediate fragments are acknowledged only through
        the final fragment's CQE).
        """
        if len(res.live_cids) + len(res.zombie_cids) >= 0xFFFF:
            raise DriverError(
                f"CID space exhausted on SQ{res.sq.qid}: "
                f"{len(res.live_cids)} in flight + "
                f"{len(res.zombie_cids)} quarantined")
        cid = res.next_cid
        while cid in res.live_cids or cid in res.zombie_cids:
            cid = (cid + 1) & 0xFFFF
        res.next_cid = (cid + 1) & 0xFFFF
        if track:
            res.live_cids.add(cid)
        return cid

    def _retire_cid(self, res: _QueueResources, cid: int) -> None:
        """Release a CID and any host pages pinned for its command.

        Idempotent: retiring an already-retired CID (a stale or duplicate
        CQE, or an abandoned attempt that later completes) is harmless.
        """
        res.live_cids.discard(cid)
        # A CQE for a quarantined CID is the late completion the
        # quarantine was waiting for: the CID is provably out of the
        # device now, so it leaves the zombie set too.
        res.zombie_cids.discard(cid)
        for page in res.pending_pages.pop(cid, ()):
            self.memory.free_page(page)

    def _abandon_cid(self, res: _QueueResources, cid: int) -> None:
        """Release an abandoned command's CID into quarantine.

        Unlike :meth:`_retire_cid` (called when a CQE proves the command
        left the device), abandonment happens while the device may still
        hold the command — its SQE unfetched behind a lost doorbell, or
        its CQE delayed.  Reusing the CID inside that window would make
        the late CQE resolve the *new* command, so the CID is parked in
        ``zombie_cids`` until the late CQE arrives or the queue drains.
        """
        self._retire_cid(res, cid)
        res.zombie_cids.add(cid)

    def _maybe_clear_zombies(self, res: _QueueResources) -> None:
        """Lift the quarantine once no late CQE can exist.

        With nothing in flight, the device's SQ head caught up to the
        published tail, and every posted CQE consumed, any completion
        the abandoned commands could ever produce has already happened.
        """
        if (res.zombie_cids and not res.live_cids
                and res.sq.head == res.sq.tail == res.sq.shadow_tail
                and res.cq.outstanding == 0):
            res.zombie_cids.clear()

    def inflight(self, qid: int) -> int:
        """Commands currently outstanding on *qid* (live CIDs)."""
        return len(self.queue(qid).live_cids)

    def retire(self, qid: int, cid: int) -> None:
        """Abandon an outstanding command: release its CID and pages.

        The engine's timeout path calls this before resubmitting under a
        fresh CID — if the original CQE was lost for good, nothing else
        will ever retire the old one.  The CID enters quarantine (see
        ``zombie_cids``) rather than the free pool: the device may still
        complete the abandoned command.  Idempotent, like
        :meth:`_retire_cid`.
        """
        self._abandon_cid(self.queue(qid), cid)

    def _stage_data(self, res: _QueueResources, data: bytes) -> int:
        """Copy the user payload into the queue's DMA-able scratch buffer."""
        if len(data) > res.scratch_pages * PAGE_SIZE:
            raise DriverError(
                f"payload of {len(data)} B exceeds scratch buffer")
        self.memory.write(res.scratch, data)
        return res.scratch

    def _ring_sq_doorbell(self, res: _QueueResources) -> None:
        """Publish the SQ tail.

        Stock MMIO mode: one posted 4-byte BAR write (one TLP).  Shadow
        mode (I/O queues only): a plain store into the shadow page —
        no TLP at all — escalated to a BAR wake only when the
        device-published park record says the controller stopped
        polling and the eventidx test says it has not seen this tail.

        Must be called with ``res.sq.lock`` held (the real driver writes
        the doorbell under the same spinlock acquisition that inserted
        the entries — releasing first would let another CPU publish a
        tail that skips our entries).
        """
        old_tail = res.sq.shadow_tail
        # Lock is held by every caller (documented contract above);
        # ring_doorbell() itself raises LockNotHeldError if not.
        tail = res.sq.ring_doorbell()  # verify: ignore[VER103]
        qid = res.sq.qid
        if self.shadow is not None and qid != 0:
            self.clock.advance(self.timing.shadow_db_write_ns)
            if self.faults.fire(DROP_DOORBELL):
                # The tail store stalled before becoming visible to the
                # device (model of a torn/not-yet-flushed publication):
                # the shadow page keeps the stale value and only the
                # timeout re-ring — which repeats this store — recovers.
                return
            self.shadow.write_sq_tail(qid, tail)
            self.shadow_rings += 1
            if self.shadow.needs_mmio_wake(qid, old_tail, tail,
                                           res.sq.depth, self.clock.now):
                self.link.host_mmio_write(4, CAT_DOORBELL)
                self.clock.advance(self.timing.doorbell_write_ns)
                self.shadow_wakes += 1
                self.ssd.bar.write32(sq_doorbell_offset(qid), tail)
            return
        self.link.host_mmio_write(4, CAT_DOORBELL)
        self.clock.advance(self.timing.doorbell_write_ns)
        if self.faults.fire(DROP_DOORBELL):
            # The posted write left the root complex but never landed:
            # the host paid the cost, the device's tail stays stale.
            return
        self.ssd.bar.write32(sq_doorbell_offset(qid), tail)

    def _ring_cq_doorbell(self, res: _QueueResources) -> None:
        if self.shadow is not None and res.cq.qid != 0:
            # CQ heads never need a wake: the device only cares when it
            # next posts completions, and it syncs the shadow page then.
            self.shadow.write_cq_head(res.cq.qid, res.cq.head)
            self.clock.advance(self.timing.shadow_db_write_ns)
            return
        self.ssd.bar.write32(cq_doorbell_offset(res.cq.qid), res.cq.head)
        self.link.host_mmio_write(4, CAT_DOORBELL)
        self.clock.advance(self.timing.doorbell_write_ns)

    # ------------------------------------------------------------------
    # submission primitives
    # ------------------------------------------------------------------
    def _resolve_spec(self, method) -> DatapathSpec:
        """Resolve *method* (name or spec) through the datapath registry,
        translating lookup failures into the driver's exception type."""
        if isinstance(method, DatapathSpec):
            return method
        try:
            return datapath_registry.resolve(method)
        except datapath_registry.UnknownMethodError as exc:
            raise DriverError(str(exc)) from None

    def submit(self, method, cmd: NvmeCommand, data: bytes, qid: int,
               ring: bool = True, private_buffer: bool = False,
               payload_id: Optional[int] = None) -> int:
        """Generic write submission: encode *data* with *method*'s host
        codec (ISSUE 5 tentpole).

        *method* is a registry name (``"prp"``, ``"sgl"``, ...) or a
        :class:`~repro.datapath.spec.DatapathSpec`.  The codec owns the
        whole encode — staging, data-pointer construction, SQE (and chunk)
        insertion under the SQ lock, the optional doorbell — so every
        method follows one submission shape and new methods need no
        driver edits.  *private_buffer* and *payload_id* are forwarded to
        codecs that use them (PRP at QD>1; tagged inline).
        """
        spec = self._resolve_spec(method)
        codec = spec.host_codec
        if codec is None:
            raise DriverError(
                f"transfer method {spec.name!r} has no host codec; use its "
                f"orchestration layer in repro.transfer")
        return codec.encode(self, cmd, data, qid, ring=ring,
                            private_buffer=private_buffer,
                            payload_id=payload_id)

    def submit_write_prp(self, cmd: NvmeCommand, data: bytes,
                         qid: int, ring: bool = True,
                         private_buffer: bool = False) -> int:
        """Stock write path (thin wrapper over the generic :meth:`submit`
        with the PRP codec): stage data, build PRPs, insert SQE, doorbell.

        *private_buffer* allocates a dedicated DMA buffer for this command
        instead of reusing the queue's scratch area.  Mandatory at QD>1:
        concurrent in-flight writes staged into the shared scratch would
        overwrite each other before the device fetches them.  The buffer
        is freed automatically when the command's CID retires.
        """
        return self.submit(dp_names.PRP, cmd, data, qid, ring=ring,
                           private_buffer=private_buffer)

    def submit_write_sgl(self, cmd: NvmeCommand, data: bytes,
                         qid: int, ring: bool = True) -> int:
        """SGL write path (§5 comparison): byte-granular data pointer."""
        return self.submit(dp_names.SGL, cmd, data, qid, ring=ring)

    def submit_write_inline(self, cmd: NvmeCommand, data: bytes,
                            qid: int, ring: bool = True) -> int:
        """ByteExpress path: command + payload chunks under one SQ lock.

        Refused when the controller's Identify page does not advertise
        ByteExpress support — on stock firmware the chunks would be
        misparsed as commands, so feature detection is mandatory.
        """
        return self.submit(dp_names.BYTEEXPRESS, cmd, data, qid, ring=ring)

    def submit_write_inline_tagged(self, cmd: NvmeCommand, data: bytes,
                                   qid: int, payload_id: int,
                                   ring: bool = True) -> int:
        """ByteExpress tagged mode (§3.3.2 future work): self-describing
        chunks that the controller may fetch interleaved across queues."""
        return self.submit(dp_names.BYTEEXPRESS_TAGGED, cmd, data, qid,
                           ring=ring, payload_id=payload_id)

    def submit_raw(self, cmd: NvmeCommand, qid: int,
                   ring: bool = True, expect_completion: bool = True) -> int:
        """Insert a command with no driver-managed data phase (BandSlim
        fragments, flushes, result-fetch commands).

        *expect_completion=False* marks a command whose CQE is suppressed
        by protocol (BandSlim intermediate fragments): its CID is not
        tracked as live, because no completion will ever retire it.
        """
        res = self.queue(qid)
        cmd.cid = self._alloc_cid(res, track=expect_completion)
        with res.sq.lock:
            with self.clock.span("drv.sq_submit"):
                submit_plain(res.sq, cmd, self.clock, self.timing)
            if ring:
                self._ring_sq_doorbell(res)
        return cmd.cid

    def submit_read_prp(self, cmd: NvmeCommand, read_len: int,
                        qid: int, ring: bool = True) -> Tuple[int, int]:
        """Read path: point PRP1 at the scratch buffer for the return data.

        Returns (cid, buffer_addr); fetch the data after the completion.
        """
        res = self.queue(qid)
        if read_len > res.scratch_pages * PAGE_SIZE:
            raise DriverError(f"read of {read_len} B exceeds scratch buffer")
        cmd.cid = self._alloc_cid(res)
        cmd.prp1 = res.scratch
        cmd.cdw13 = read_len
        with res.sq.lock:
            with self.clock.span("drv.sq_submit"):
                submit_plain(res.sq, cmd, self.clock, self.timing)
            if ring:
                self._ring_sq_doorbell(res)
        return cmd.cid, res.scratch

    def submit_read_sgl(self, cmd: NvmeCommand, want: int, total: int,
                        qid: int, ring: bool = True) -> Tuple[int, int]:
        """Small-read optimisation (§5): receive the first *want* bytes of
        a *total*-byte (LBA-granular) read; a bit-bucket descriptor
        discards the rest on the device, saving the return traffic.

        Returns (cid, buffer_addr).
        """
        from repro.nvme.sgl import build_read_sgl

        res = self.queue(qid)
        if want > res.scratch_pages * PAGE_SIZE:
            raise DriverError(f"read of {want} B exceeds scratch buffer")
        if total < want:
            raise DriverError("total read length smaller than wanted bytes")
        mapping = build_read_sgl(self.memory, res.scratch, want,
                                 total - want)
        cmd.cid = self._alloc_cid(res)
        res.pending_pages.setdefault(cmd.cid, []).extend(mapping.segment_pages)
        cmd.use_sgl()
        desc = mapping.inline.pack()
        cmd.prp1 = int.from_bytes(desc[:8], "little")
        cmd.prp2 = int.from_bytes(desc[8:], "little")
        cmd.cdw13 = total
        with res.sq.lock:
            with self.clock.span("drv.sq_submit"):
                submit_plain(res.sq, cmd, self.clock, self.timing)
            if ring:
                self._ring_sq_doorbell(res)
        return cmd.cid, res.scratch

    # ------------------------------------------------------------------
    # batched submission (queue depth > 1)
    # ------------------------------------------------------------------
    def write_batch(self, payloads: List[bytes], opcode: int,
                    method: str = dp_names.BYTEEXPRESS,
                    qid: Optional[int] = None,
                    cdw10s: Optional[List[int]] = None) -> "BatchResult":
        """Submit many writes with ONE doorbell ring, then reap them all.

        Models asynchronous submission at queue depth ``len(payloads)``:
        the tail-pointer update is published once for the whole batch, so
        doorbell MMIO cost and traffic amortise — one of the per-command
        overheads §4.2 charges BandSlim for.  Supports registry methods
        whose caps declare ``batchable`` (the mechanisms whose submission
        is a single command sequence).
        """
        if not payloads:
            raise DriverError("empty batch")
        spec = self._resolve_spec(method)
        if not spec.caps.batchable:
            raise DriverError(f"write_batch does not support {spec.name!r}")
        qid = qid if qid is not None else self.io_qids[0]
        res = self.queue(qid)
        cdw10s = cdw10s if cdw10s is not None else [0] * len(payloads)
        if len(cdw10s) != len(payloads):
            raise DriverError("cdw10s length mismatch")

        start_ns = self.clock.now
        start_bytes = self.link.counter.total_bytes
        temp_pages: List[int] = []
        for payload, cdw10 in zip(payloads, cdw10s):
            cmd = NvmeCommand(opcode=opcode, nsid=DEFAULT_NSID, cdw10=cdw10)
            if spec.caps.inline:
                self.submit(spec, cmd, payload, qid, ring=False)
                continue
            # PRP: every in-flight op needs a private DMA buffer.
            pages = self.memory.alloc_pages(
                max(1, (len(payload) + PAGE_SIZE - 1) // PAGE_SIZE))
            temp_pages.extend(pages)
            self.memory.write(pages[0], payload)
            mapping = build_prps(self.memory, pages[0], len(payload))
            cmd.cid = self._alloc_cid(res)
            res.pending_pages.setdefault(cmd.cid, []).extend(mapping.list_pages)
            cmd.prp1, cmd.prp2 = mapping.prp1, mapping.prp2
            cmd.cdw12 = len(payload)
            with self.clock.span("drv.sq_submit"):
                with res.sq.lock:
                    submit_plain(res.sq, cmd, self.clock, self.timing)
        with res.sq.lock:
            self._ring_sq_doorbell(res)

        statuses = []
        for _ in payloads:
            statuses.append(self._wait_on(res).status)
        for page in temp_pages:
            self.memory.free_page(page)
        return BatchResult(ops=len(payloads),
                           elapsed_ns=self.clock.now - start_ns,
                           pcie_bytes=(self.link.counter.total_bytes
                                       - start_bytes),
                           statuses=statuses)

    # ------------------------------------------------------------------
    # completion
    # ------------------------------------------------------------------
    def wait(self, qid: int) -> NvmeCompletion:
        """Drive the device until one completion arrives on *qid*."""
        return self._wait_on(self.queue(qid))

    def kick(self, qid: int) -> None:
        """Ring *qid*'s SQ doorbell, publishing any unrung submissions.

        The engine submits with ``ring=False`` and kicks once per batch;
        this is also the timeout-recovery re-ring (republishing the tail
        is idempotent and recovers a dropped doorbell write).
        """
        res = self.queue(qid)
        with res.sq.lock:
            self._ring_sq_doorbell(res)

    def reap(self, qid: int,
             limit: Optional[int] = None) -> List[NvmeCompletion]:
        """Drain up to *limit* visible CQEs from *qid* without blocking.

        Pure completion-side harvesting for the reactor: never drives the
        device.  Each CQE pays host handling cost, applies the SQ-head
        report, and retires its CID (freeing that command's pinned
        pages).  The CQ doorbell is rung once per batch — the head
        publication amortises exactly as interrupt-coalesced drivers do.
        """
        res = self.queue(qid)
        out: List[NvmeCompletion] = []
        poll = res.cq.poll
        while limit is None or len(out) < limit:
            cqe = poll()
            if cqe is None:
                break
            out.append(cqe)
        if out:
            # Batched harvesting: the whole drain was collected above;
            # handling cost, SQ-head reports and CID retirement are
            # applied in one pass.  One span covers the batch (span
            # *totals* are what the phase breakdowns consume), and
            # ``advance_repeat`` keeps the clock arithmetic bit-identical
            # to a per-CQE loop.
            with self.clock.span("drv.completion"):
                self.clock.advance_repeat(self.timing.completion_handle_ns,
                                          len(out))
                for cqe in out:
                    res.sq.note_sq_head(cqe.sq_head)
            for cqe in out:
                self._retire_cid(res, cqe.cid)
            self._ring_cq_doorbell(res)
        self._maybe_clear_zombies(res)
        return out

    def _try_wait_on(self,
                     res: _QueueResources) -> Optional[NvmeCompletion]:
        """One poll → process → poll round; ``None`` means timeout.

        The device model runs to quiescence inside ``process_all``, so an
        empty CQ afterwards is a genuine command timeout: nothing further
        will arrive without new host action (re-ring, resubmit).
        """
        cqe = res.cq.poll()
        if cqe is None:
            self.ssd.controller.process_all()
            cqe = res.cq.poll()
        if cqe is None:
            return None
        with self.clock.span("drv.completion"):
            self.clock.advance(self.timing.completion_handle_ns)
            res.sq.note_sq_head(cqe.sq_head)
            self._ring_cq_doorbell(res)
        self._retire_cid(res, cqe.cid)
        self._maybe_clear_zombies(res)
        return cqe

    def _wait_on(self, res: _QueueResources) -> NvmeCompletion:
        cqe = self._try_wait_on(res)
        if cqe is None:
            raise DriverError(f"no completion arrived on CQ{res.cq.qid}")
        return cqe

    # ------------------------------------------------------------------
    # passthrough ioctl
    # ------------------------------------------------------------------
    def passthru(self, req: PassthruRequest, method: str = dp_names.PRP,
                 qid: Optional[int] = None) -> PassthruResult:
        """Synchronous NVMe passthrough: the KV-SSD/CSD user-API entry.

        *method* names a registry datapath with a host codec (``prp``,
        ``sgl``, ``byteexpress``); the write submission goes through the
        generic :meth:`submit`.  BandSlim and MMIO have their own
        orchestration layers in :mod:`repro.transfer` because they do not
        map onto a single command submission.

        Recovery is built in.  A timeout (no completion after the device
        ran to quiescence) re-rings the doorbell — recovering a lost tail
        update — and otherwise resubmits with exponential backoff, as
        does any error completion whose DNR bit is clear, until
        ``retry_policy`` runs out of attempts or deadline.  Inline
        submissions consult the circuit breaker and are downgraded to the
        PRP baseline while it is open.
        """
        qid = qid if qid is not None else self.io_qids[0]
        res = self.queue(qid)
        start_ns = self.clock.now
        start_bytes = self.link.counter.total_bytes
        self.clock.advance(self.timing.passthrough_ns)
        policy = self.retry_policy
        deadline_ns = start_ns + policy.deadline_ns

        # Resolve the datapath lazily: reads ignore *method* (they always
        # return over PRP/SGL read submissions), so an unknown name only
        # matters when a write will actually encode with it.
        spec = self._resolve_spec(method) if req.is_write else None
        inline = spec is not None and spec.caps.inline
        if inline and not self.breaker.allow_inline():
            spec = self._resolve_spec(dp_names.PRP)
            inline = False
            self.inline_fallbacks += 1
            self.link.counter.record_event(EVT_INLINE_FALLBACK)

        attempt = 0
        cqe: Optional[NvmeCompletion] = None
        read_buf: Optional[int] = None
        prev_cid: Optional[int] = None
        while True:
            attempt += 1
            if prev_cid is not None:
                # The previous attempt is abandoned; if its CQE was lost
                # for good, nothing else will ever retire the CID — and
                # if it was merely delayed, quarantine keeps the CID
                # unallocatable until the late CQE lands.
                self._abandon_cid(res, prev_cid)
            cmd = NvmeCommand(opcode=req.opcode, nsid=req.nsid,
                              cdw10=req.cdw10, cdw11=req.cdw11,
                              cdw12=req.cdw12, cdw13=req.cdw13,
                              cdw14=req.cdw14, cdw15=req.cdw15)
            read_buf = None
            if req.is_write:
                prev_cid = self.submit(spec, cmd, req.data, qid)
            elif req.read_len:
                prev_cid, read_buf = self.submit_read_prp(cmd, req.read_len,
                                                          qid)
            else:
                prev_cid = self.submit_raw(cmd, qid)

            cqe = self._try_wait_on(res)
            if cqe is None:
                # Timeout.  The command (or its doorbell) was lost;
                # republish the tail — idempotent, and exactly what
                # recovers a dropped doorbell write — and repoll.
                self.timeouts += 1
                self.link.counter.record_event(EVT_TIMEOUT)
                with res.sq.lock:
                    self._ring_sq_doorbell(res)
                cqe = self._try_wait_on(res)

            if cqe is not None and cqe.ok:
                if inline:
                    self.breaker.record_success()
                break

            retryable = cqe is None or cqe.retryable
            if inline and retryable:
                # Transient transfer fault on the inline path; semantic
                # errors (DNR set) would fail on PRP too and do not
                # count against the breaker.
                trips_before = self.breaker.trips
                self.breaker.record_failure()
                if self.breaker.trips > trips_before:
                    self.link.counter.record_event(EVT_BREAKER_TRIP)

            if not retryable:
                break  # DNR set: retrying cannot change the outcome
            if attempt >= policy.max_attempts:
                break
            backoff_ns = policy.backoff_ns(attempt)
            if self.clock.now + backoff_ns > deadline_ns:
                break
            self.clock.advance(backoff_ns)
            self.retries += 1
            self.link.counter.record_event(EVT_RETRY)
            if inline and not self.breaker.allow_inline():
                # The breaker opened mid-command: finish on the stock
                # path, which no inline fault can touch.
                spec = self._resolve_spec(dp_names.PRP)
                inline = False
                self.inline_fallbacks += 1
                self.link.counter.record_event(EVT_INLINE_FALLBACK)

        if cqe is None:
            raise CommandTimeoutError(
                f"command on SQ{qid} produced no completion within "
                f"{attempt} attempt(s)")
        data = None
        if read_buf is not None and cqe.ok:
            data = self.memory.read(read_buf, req.read_len)
        return PassthruResult(
            status=cqe.status, result=cqe.result, data=data,
            latency_ns=self.clock.now - start_ns,
            pcie_bytes=self.link.counter.total_bytes - start_bytes)
