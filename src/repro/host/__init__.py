"""Host substrate: physical memory model and the NVMe driver.

``NvmeDriver`` is imported lazily (PEP 562): the driver sits above the
core/nvme layers, which themselves need :mod:`repro.host.memory`, and a
direct import here would close an import cycle.
"""

from repro.host.memory import HostMemory

__all__ = ["HostMemory", "NvmeDriver", "DriverError"]


def __getattr__(name):
    if name in ("NvmeDriver", "DriverError"):
        from repro.host import driver
        return getattr(driver, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
