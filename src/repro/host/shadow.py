"""Shadow doorbells: host-memory tail/head publication (NVMe DBBUF).

Stock NVMe publishes every SQ tail and CQ head with a posted 4-byte MMIO
write — uncached, serialising, and one TLP on the wire per update.  The
Doorbell Buffer Config mechanism (NVMe 1.3, admin opcode 0x7C; the
virtualised-controller trick studied by Chen et al., arXiv:2304.05148)
replaces that with two shared pages in host memory:

* the **shadow page**, host-written: one slot per queue pair holding the
  current SQ tail and CQ head.  Publishing a doorbell becomes a plain
  cacheable store; the controller reads the whole array with a single
  small DMA read whenever it next looks for work.
* the **eventidx page**, device-written: per-queue eventidx values (the
  last tail the controller consumed) plus a *park record* — the
  simulated-time instant until which the controller promises to keep
  polling the shadow page after going idle.

The host falls back to a real BAR doorbell only when the park record
says the device stopped polling *and* the classic eventidx crossing test
says the device has not yet seen the new tail.  Under sustained QD>1
load the device never parks between rounds, so almost all
``CAT_DOORBELL`` MMIO traffic disappears; an idle rig still wakes the
device correctly through the BAR write.

Layout (both pages are one 4 KiB host page):

======================  =================================================
shadow page             ``qid*8``: SQ tail (u32) · ``qid*8+4``: CQ head (u32)
eventidx page           ``qid*8``: SQ eventidx (u32) · ``qid*8+4``: reserved
eventidx page @ 0xF80   park record: poll-until timestamp (f64, ns)
======================  =================================================
"""

from __future__ import annotations

import struct

from repro.host.memory import HostMemory

#: Bytes per queue slot in either page.
SLOT_SIZE = 8
#: Offset of the park record (poll-until timestamp) in the eventidx page.
PARK_RECORD_OFFSET = 0xF80
#: Highest queue id either page can hold a slot for.
MAX_QID = PARK_RECORD_OFFSET // SLOT_SIZE - 1


class ShadowDoorbells:
    """One host/device view over the shadow + eventidx page pair.

    The driver constructs it (allocating both pages) and registers the
    addresses with the controller via a Doorbell Buffer Config admin
    command; the controller attaches its own view to the same addresses.
    Host-side accesses are plain memory; the *controller* charges PCIe
    traffic for its DMA reads/writes of these pages (``CAT_SHADOW_SYNC``).
    """

    def __init__(self, memory: HostMemory, shadow_addr: int | None = None,
                 eventidx_addr: int | None = None) -> None:
        self.memory = memory
        self.shadow_addr = (memory.alloc_page() if shadow_addr is None
                            else shadow_addr)
        self.eventidx_addr = (memory.alloc_page() if eventidx_addr is None
                              else eventidx_addr)

    @classmethod
    def attach(cls, memory: HostMemory, shadow_addr: int,
               eventidx_addr: int) -> "ShadowDoorbells":
        """The controller's view over pages the host already allocated."""
        return cls(memory, shadow_addr, eventidx_addr)

    # ------------------------------------------------------------------
    # shadow page (host-written, device-read)
    # ------------------------------------------------------------------
    def _check_qid(self, qid: int) -> None:
        if not 0 <= qid <= MAX_QID:
            raise ValueError(f"qid {qid} exceeds shadow page capacity")

    def write_sq_tail(self, qid: int, tail: int) -> None:
        self._check_qid(qid)
        self.memory.write(self.shadow_addr + qid * SLOT_SIZE,
                          struct.pack("<I", tail & 0xFFFFFFFF))

    def read_sq_tail(self, qid: int) -> int:
        self._check_qid(qid)
        return struct.unpack(
            "<I", self.memory.read(self.shadow_addr + qid * SLOT_SIZE, 4))[0]

    def write_cq_head(self, qid: int, head: int) -> None:
        self._check_qid(qid)
        self.memory.write(self.shadow_addr + qid * SLOT_SIZE + 4,
                          struct.pack("<I", head & 0xFFFFFFFF))

    def read_cq_head(self, qid: int) -> int:
        self._check_qid(qid)
        return struct.unpack(
            "<I",
            self.memory.read(self.shadow_addr + qid * SLOT_SIZE + 4, 4))[0]

    # ------------------------------------------------------------------
    # eventidx page (device-written, host-read)
    # ------------------------------------------------------------------
    def write_sq_eventidx(self, qid: int, value: int) -> None:
        self._check_qid(qid)
        self.memory.write(self.eventidx_addr + qid * SLOT_SIZE,
                          struct.pack("<I", value & 0xFFFFFFFF))

    def read_sq_eventidx(self, qid: int) -> int:
        self._check_qid(qid)
        return struct.unpack(
            "<I",
            self.memory.read(self.eventidx_addr + qid * SLOT_SIZE, 4))[0]

    def write_poll_until(self, deadline_ns: float) -> None:
        self.memory.write(self.eventidx_addr + PARK_RECORD_OFFSET,
                          struct.pack("<d", deadline_ns))

    def read_poll_until(self) -> float:
        return struct.unpack(
            "<d",
            self.memory.read(self.eventidx_addr + PARK_RECORD_OFFSET, 8))[0]

    # ------------------------------------------------------------------
    # persistence (repro.durability) — the pages are plain host DRAM,
    # gone at a power cut like any other host-volatile state.
    # ------------------------------------------------------------------
    _PAGE_BYTES = 4096

    def snapshot(self) -> object:
        return {
            "shadow": self.memory.read(self.shadow_addr, self._PAGE_BYTES),
            "eventidx": self.memory.read(self.eventidx_addr,
                                         self._PAGE_BYTES),
        }

    def restore(self, state: object) -> None:
        assert isinstance(state, dict)
        shadow = state["shadow"]
        eventidx = state["eventidx"]
        assert isinstance(shadow, bytes) and isinstance(eventidx, bytes)
        self.memory.write(self.shadow_addr, shadow)
        self.memory.write(self.eventidx_addr, eventidx)

    def scrub(self) -> None:
        """Zero both pages in place (slots, eventidx, park record)."""
        zeros = bytes(self._PAGE_BYTES)
        self.memory.write(self.shadow_addr, zeros)
        self.memory.write(self.eventidx_addr, zeros)

    # ------------------------------------------------------------------
    # the host's wake decision
    # ------------------------------------------------------------------
    def needs_mmio_wake(self, qid: int, old_tail: int, new_tail: int,
                        depth: int, now_ns: float) -> bool:
        """Must this tail update be backed by a real BAR doorbell?

        No while the park record says the device is still polling the
        shadow page.  Once parked, the standard eventidx crossing test
        applies: wake iff the update moves the tail past the last value
        the device acknowledged.  A re-ring of an unchanged tail (the
        timeout-recovery path) always wakes a parked device — the host
        is explicitly trying to get its attention.
        """
        if now_ns <= self.read_poll_until():
            return False
        if old_tail == new_tail:
            return True
        eventidx = self.read_sq_eventidx(qid)
        return ((new_tail - eventidx - 1) % depth
                < (new_tail - old_tail) % depth)
