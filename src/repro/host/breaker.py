"""Transfer-path circuit breaker: graceful inline→PRP degradation.

ByteExpress and BandSlim depend on queue-protocol invariants that a
faulty link can keep violating (corrupted inline lengths, garbled chunk
TLPs).  Retrying each command helps with isolated glitches, but under a
persistently bad link the inline path burns its whole retry budget per
command.  The breaker converts that into a policy decision: after
``threshold`` *consecutive* inline failures the inline path opens and
submissions fall back to the stock PRP baseline — always correct, merely
slower — for ``cooldown_ops`` operations, after which a single inline
probe decides whether to close again.
"""

from __future__ import annotations

from dataclasses import dataclass


STATE_CLOSED = "closed"        # inline allowed (normal operation)
STATE_OPEN = "open"            # inline disabled, PRP fallback
STATE_HALF_OPEN = "half_open"  # one inline probe in flight


@dataclass
class BreakerConfig:
    #: Consecutive inline failures before the breaker opens.
    threshold: int = 3
    #: Operations served by the fallback path before an inline probe.
    cooldown_ops: int = 16

    def __post_init__(self) -> None:
        if self.threshold < 1:
            raise ValueError("threshold must be at least 1")
        if self.cooldown_ops < 1:
            raise ValueError("cooldown_ops must be at least 1")


class CircuitBreaker:
    """Consecutive-failure breaker for the inline transfer path."""

    def __init__(self, config: BreakerConfig = None) -> None:
        self.config = config or BreakerConfig()
        self.state = STATE_CLOSED
        self.consecutive_failures = 0
        self._cooldown_left = 0
        # stats
        self.trips = 0
        self.fallbacks = 0
        self.probes = 0

    def allow_inline(self) -> bool:
        """May the next submission use the inline path?

        In the open state each call consumes one cooldown slot; when the
        cooldown is exhausted the breaker half-opens and the next caller
        gets a single inline probe.
        """
        if self.state == STATE_CLOSED:
            return True
        if self.state == STATE_OPEN:
            self._cooldown_left -= 1
            if self._cooldown_left <= 0:
                self.state = STATE_HALF_OPEN
            self.fallbacks += 1
            return False
        # half-open: let exactly this caller probe the inline path
        self.probes += 1
        return True

    def record_success(self) -> None:
        self.consecutive_failures = 0
        if self.state == STATE_HALF_OPEN:
            self.state = STATE_CLOSED

    def record_failure(self) -> None:
        self.consecutive_failures += 1
        if self.state == STATE_HALF_OPEN:
            self._trip()
        elif (self.state == STATE_CLOSED
              and self.consecutive_failures >= self.config.threshold):
            self._trip()

    def _trip(self) -> None:
        self.state = STATE_OPEN
        self._cooldown_left = self.config.cooldown_ops
        self.consecutive_failures = 0
        self.trips += 1
