"""Host DRAM model: page allocator plus byte-addressable access.

PRP transfers require page-aligned, page-granular buffers; the queues
themselves (SQ/CQ rings and PRP list pages) also live in host memory and are
read by the device over PCIe.  The model is a sparse map of 4 KB frames.
"""

from __future__ import annotations

from typing import Dict, List

from repro.sim.config import PAGE_SIZE


class HostMemory:
    """Sparse, page-granular host physical memory."""

    #: Allocation starts above a small reserved region to catch null derefs.
    _ALLOC_BASE = 0x10_0000

    def __init__(self) -> None:
        self._frames: Dict[int, bytearray] = {}
        self._next = self._ALLOC_BASE

    # -- allocation -------------------------------------------------------
    def alloc_page(self) -> int:
        """Allocate one zeroed 4 KB page, returning its physical address."""
        addr = self._next
        self._next += PAGE_SIZE
        self._frames[addr] = bytearray(PAGE_SIZE)
        return addr

    def alloc_pages(self, count: int) -> List[int]:
        """Allocate *count* contiguous pages; returns their addresses."""
        if count < 1:
            raise ValueError("must allocate at least one page")
        return [self.alloc_page() for _ in range(count)]

    def alloc_buffer(self, nbytes: int) -> int:
        """Allocate a page-aligned buffer covering *nbytes*; returns base."""
        if nbytes < 0:
            raise ValueError("negative buffer size")
        pages = max(1, (nbytes + PAGE_SIZE - 1) // PAGE_SIZE)
        return self.alloc_pages(pages)[0]

    def free_page(self, addr: int) -> None:
        """Release one previously allocated page (e.g. a PRP list page)."""
        if addr % PAGE_SIZE:
            raise ValueError("free_page requires a page-aligned address")
        if self._frames.pop(addr, None) is None:
            raise MemoryError(f"double free of host page {addr:#x}")

    # -- access -----------------------------------------------------------
    def _frame(self, addr: int) -> bytearray:
        base = addr & ~(PAGE_SIZE - 1)
        frame = self._frames.get(base)
        if frame is None:
            raise MemoryError(f"access to unmapped host address {addr:#x}")
        return frame

    def write(self, addr: int, data: bytes) -> None:
        """Write *data* starting at *addr*, possibly spanning pages."""
        in_page = addr & (PAGE_SIZE - 1)
        if data and in_page + len(data) <= PAGE_SIZE:
            # Single-frame access: the overwhelmingly common case (SQE
            # slots, CQE slots, inline chunks all fit one page).
            frame = self._frames.get(addr - in_page)
            if frame is None:
                raise MemoryError(
                    f"access to unmapped host address {addr:#x}")
            frame[in_page:in_page + len(data)] = data
            return
        off = 0
        while off < len(data):
            base = (addr + off) & ~(PAGE_SIZE - 1)
            in_page = (addr + off) - base
            take = min(len(data) - off, PAGE_SIZE - in_page)
            frame = self._frame(addr + off)
            frame[in_page:in_page + take] = data[off:off + take]
            off += take

    def read(self, addr: int, nbytes: int) -> bytes:
        """Read *nbytes* starting at *addr*, possibly spanning pages."""
        in_page = addr & (PAGE_SIZE - 1)
        if 0 < nbytes <= PAGE_SIZE - in_page:
            frame = self._frames.get(addr - in_page)
            if frame is None:
                raise MemoryError(
                    f"access to unmapped host address {addr:#x}")
            return bytes(frame[in_page:in_page + nbytes])
        out = bytearray()
        off = 0
        while off < nbytes:
            base = (addr + off) & ~(PAGE_SIZE - 1)
            in_page = (addr + off) - base
            take = min(nbytes - off, PAGE_SIZE - in_page)
            frame = self._frame(addr + off)
            out += frame[in_page:in_page + take]
            off += take
        return bytes(out)

    @property
    def mapped_pages(self) -> int:
        return len(self._frames)

    # -- persistence (repro.durability) -----------------------------------
    def snapshot(self) -> object:
        """Full image of mapped frames plus the allocation cursor."""
        return {"next": self._next,
                "frames": {addr: bytes(frame)
                           for addr, frame in self._frames.items()}}

    def restore(self, state: object) -> None:
        assert isinstance(state, dict)
        self._next = state["next"]
        self._frames = {addr: bytearray(frame)
                        for addr, frame in state["frames"].items()}

    def scrub(self) -> None:
        """Power-loss wipe: zero every mapped frame *in place*.

        The mapping itself survives (a rebooted host re-zeroes its DRAM;
        the physical frames do not move), so objects holding addresses
        into host memory — queue rings, shadow pages — keep valid
        addresses and can be scrubbed in any order.
        """
        for frame in self._frames.values():
            frame[:] = bytes(PAGE_SIZE)
