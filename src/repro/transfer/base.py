"""Common interface for small-payload transfer methods.

Every mechanism the paper compares — PRP (stock NVMe), SGL, BandSlim
(NVMe-CMD-based), the PCIe-MMIO byte interface (2B-SSD/ByteFS style),
ByteExpress, and the hybrid policy — implements one call:

    stats = method.write(payload, opcode=..., cdw10=...)

and reports uniform :class:`TransferStats`, so benchmarks sweep methods
interchangeably.  Methods are bound to a driver + device pair and issue
real protocol operations; nothing here is an analytic shortcut.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Optional

from repro.nvme.constants import IoOpcode


@dataclass
class TransferStats:
    """Measured outcome of one payload transfer."""

    method: str
    payload_len: int
    latency_ns: float
    pcie_bytes: int
    #: NVMe commands issued on the wire (BandSlim >1 for large payloads).
    commands: int = 1
    status: int = 0

    @property
    def ok(self) -> bool:
        return self.status == 0

    @property
    def amplification(self) -> float:
        """PCIe bytes per payload byte (Figure 1(c))."""
        if self.payload_len == 0:
            return 0.0
        return self.pcie_bytes / self.payload_len


@dataclass
class AggregateStats:
    """Accumulated over a workload run (one Figure-5/6/7 data point).

    Per-op latencies are retained so benches can report the paper's
    1st–99th percentile error bars (Figure 6) alongside the mean.
    """

    method: str
    ops: int = 0
    payload_bytes: int = 0
    pcie_bytes: int = 0
    total_latency_ns: float = 0.0
    commands: int = 0
    latencies_ns: list = field(default_factory=list)

    def add(self, stats: TransferStats) -> None:
        if stats.method != self.method:
            raise ValueError(
                f"mixing methods: {stats.method} into {self.method}")
        self.ops += 1
        self.payload_bytes += stats.payload_len
        self.pcie_bytes += stats.pcie_bytes
        self.total_latency_ns += stats.latency_ns
        self.commands += stats.commands
        self.latencies_ns.append(stats.latency_ns)

    def latency_summary(self):
        """Mean + percentile summary of the per-op latencies.

        Empty-safe: zero recorded ops yield ``LatencySummary.empty()``.
        """
        from repro.metrics.stats import LatencySummary, summarize_latencies

        if not self.latencies_ns:
            return LatencySummary.empty()
        return summarize_latencies(self.latencies_ns)

    @property
    def mean_latency_ns(self) -> float:
        return self.total_latency_ns / self.ops if self.ops else 0.0

    @property
    def throughput_kops(self) -> float:
        """Operations per second in thousands, from simulated time."""
        if self.total_latency_ns == 0:
            return 0.0
        return self.ops / self.total_latency_ns * 1e6

    @property
    def amplification(self) -> float:
        if self.payload_bytes == 0:
            return 0.0
        return self.pcie_bytes / self.payload_bytes


class TransferMethod(abc.ABC):
    """A host→device small-payload write mechanism."""

    #: Stable identifier used in benchmark tables.
    name: str = "abstract"

    @abc.abstractmethod
    def write(self, payload: bytes, opcode: int = IoOpcode.WRITE,
              cdw10: int = 0, cdw11: int = 0, nsid: int = 1,
              qid: Optional[int] = None) -> TransferStats:
        """Deliver *payload* to the device under *opcode* semantics."""

    def run_workload(self, payloads, **kwargs) -> AggregateStats:
        """Issue every payload in sequence, accumulating statistics."""
        agg = AggregateStats(method=self.name)
        for payload in payloads:
            agg.add(self.write(payload, **kwargs))
        return agg
