"""Hybrid ByteExpress/PRP transfer (paper §4.2).

Applies :class:`repro.core.hybrid.HybridPolicy`: payloads at or below the
threshold ride the submission queue inline; larger ones take the stock
PRP path.  Because ByteExpress leaves the NVMe architecture untouched,
the two coexist per command with no coordination — the property the
paper highlights over MMIO-based designs."""

from __future__ import annotations

from typing import Optional

from repro.datapath import names as dp_names
from repro.core.hybrid import METHOD_BYTEEXPRESS, HybridPolicy
from repro.nvme.constants import IoOpcode
from repro.transfer.base import TransferMethod, TransferStats
from repro.transfer.byteexpress import ByteExpressTransfer
from repro.transfer.prp_transfer import PrpTransfer


class HybridTransfer(TransferMethod):
    name = dp_names.HYBRID

    def __init__(self, byteexpress: ByteExpressTransfer, prp: PrpTransfer,
                 policy: Optional[HybridPolicy] = None) -> None:
        self.byteexpress = byteexpress
        self.prp = prp
        self.policy = policy or HybridPolicy()
        self.inline_ops = 0
        self.prp_ops = 0

    def write(self, payload: bytes, opcode: int = IoOpcode.WRITE,
              cdw10: int = 0, cdw11: int = 0, nsid: int = 1,
              qid: Optional[int] = None) -> TransferStats:
        choice = self.policy.choose(len(payload))
        if choice == METHOD_BYTEEXPRESS:
            self.inline_ops += 1
            inner = self.byteexpress.write(payload, opcode=opcode,
                                           cdw10=cdw10, cdw11=cdw11,
                                           nsid=nsid, qid=qid)
        else:
            self.prp_ops += 1
            inner = self.prp.write(payload, opcode=opcode, cdw10=cdw10,
                                   cdw11=cdw11, nsid=nsid, qid=qid)
        return TransferStats(method=self.name,
                             payload_len=inner.payload_len,
                             latency_ns=inner.latency_ns,
                             pcie_bytes=inner.pcie_bytes,
                             commands=inner.commands, status=inner.status)
