"""Stock NVMe PRP transfer (the paper's baseline, Figure 3(a)).

Host stages the payload in page-aligned memory, builds PRP entries, and the
device pulls whole 4 KB pages — the source of the >130× traffic
amplification for 32-byte payloads (Figure 1(c))."""

from __future__ import annotations

from typing import Optional

from repro.datapath import names as dp_names
from repro.host.driver import NvmeDriver
from repro.nvme.constants import IoOpcode
from repro.nvme.passthrough import PassthruRequest
from repro.transfer.base import TransferMethod, TransferStats


class PrpTransfer(TransferMethod):
    name = dp_names.PRP

    def __init__(self, driver: NvmeDriver) -> None:
        self.driver = driver

    def write(self, payload: bytes, opcode: int = IoOpcode.WRITE,
              cdw10: int = 0, cdw11: int = 0, nsid: int = 1,
              qid: Optional[int] = None) -> TransferStats:
        req = PassthruRequest(opcode=opcode, nsid=nsid, data=payload,
                              cdw10=cdw10, cdw11=cdw11)
        result = self.driver.passthru(req, method=dp_names.PRP, qid=qid)
        return TransferStats(method=self.name, payload_len=len(payload),
                             latency_ns=result.latency_ns,
                             pcie_bytes=result.pcie_bytes,
                             commands=1, status=result.status)


class SglTransfer(TransferMethod):
    """SGL data-block transfer (§5 discussion): byte-granular DMA, but the
    command still carries a descriptor the controller must parse before it
    can program the engine."""

    name = dp_names.SGL

    def __init__(self, driver: NvmeDriver) -> None:
        self.driver = driver

    def write(self, payload: bytes, opcode: int = IoOpcode.WRITE,
              cdw10: int = 0, cdw11: int = 0, nsid: int = 1,
              qid: Optional[int] = None) -> TransferStats:
        req = PassthruRequest(opcode=opcode, nsid=nsid, data=payload,
                              cdw10=cdw10, cdw11=cdw11)
        result = self.driver.passthru(req, method=dp_names.SGL, qid=qid)
        return TransferStats(method=self.name, payload_len=len(payload),
                             latency_ns=result.latency_ns,
                             pcie_bytes=result.pcie_bytes,
                             commands=1, status=result.status)
