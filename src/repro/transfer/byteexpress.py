"""ByteExpress transfer (the paper's contribution, Figure 3(d)).

The payload rides the submission queue itself: command first, then 64-byte
chunks, one doorbell, one completion.  The queue-local variant is the
paper's implemented design; the tagged variant is its §3.3.2 future-work
relaxation (self-describing chunks, out-of-order reassembly across SQs).
"""

from __future__ import annotations

import itertools
from typing import Optional

from repro.datapath import names as dp_names
from repro.host.driver import NvmeDriver
from repro.nvme.constants import IoOpcode
from repro.nvme.passthrough import PassthruRequest
from repro.transfer.base import TransferMethod, TransferStats


class ByteExpressTransfer(TransferMethod):
    name = dp_names.BYTEEXPRESS

    def __init__(self, driver: NvmeDriver) -> None:
        self.driver = driver

    def write(self, payload: bytes, opcode: int = IoOpcode.WRITE,
              cdw10: int = 0, cdw11: int = 0, nsid: int = 1,
              qid: Optional[int] = None) -> TransferStats:
        req = PassthruRequest(opcode=opcode, nsid=nsid, data=payload,
                              cdw10=cdw10, cdw11=cdw11)
        result = self.driver.passthru(req, method=dp_names.BYTEEXPRESS, qid=qid)
        return TransferStats(method=self.name, payload_len=len(payload),
                             latency_ns=result.latency_ns,
                             pcie_bytes=result.pcie_bytes,
                             commands=1, status=result.status)


class TaggedByteExpressTransfer(TransferMethod):
    """Out-of-order reassembly variant; requires a controller built in
    ``MODE_TAGGED``.  Chunk capacity drops to 56 B (8 B header), which the
    reassembly ablation quantifies against the queue-local design."""

    name = dp_names.BYTEEXPRESS_TAGGED

    def __init__(self, driver: NvmeDriver) -> None:
        self.driver = driver
        self._ids = itertools.count(1)

    def write(self, payload: bytes, opcode: int = IoOpcode.WRITE,
              cdw10: int = 0, cdw11: int = 0, nsid: int = 1,
              qid: Optional[int] = None) -> TransferStats:
        from repro.nvme.command import NvmeCommand

        qid = qid if qid is not None else self.driver.io_qids[0]
        clock = self.driver.clock
        counter = self.driver.link.counter
        start_ns, start_bytes = clock.now, counter.total_bytes
        clock.advance(self.driver.timing.passthrough_ns)

        cmd = NvmeCommand(opcode=opcode, nsid=nsid, cdw10=cdw10, cdw11=cdw11)
        payload_id = next(self._ids) & 0xFFFFFFFF
        self.driver.submit_write_inline_tagged(cmd, payload, qid, payload_id)
        cqe = self.driver.wait(qid)
        return TransferStats(method=self.name, payload_len=len(payload),
                             latency_ns=clock.now - start_ns,
                             pcie_bytes=counter.total_bytes - start_bytes,
                             commands=1, status=cqe.status)
