"""BandSlim: NVMe-CMD-based inline transfer (paper §3.2, Figure 3(c)).

The state-of-the-art comparator: payload fragments are embedded in the
fields of a *sequence* of vendor NVMe commands.  No SSD architecture
changes, but every fragment pays the full command cost — SQE build,
doorbell ring, 64 B fetch, firmware dispatch, and completion — which is
exactly the overhead ByteExpress's in-queue chunks avoid.  Sub-32-byte
payloads fit one command (matching the paper's observation); beyond that
the per-command cost grows linearly with the fragment count.

Fragment wire encoding (inside one 64 B SQE):

=========  ==========================================================
field      use
=========  ==========================================================
opcode     ``VendorOpcode.BANDSLIM_FRAG``
cdw10      stream id (one per payload transfer)
cdw11      fragment length (7:0) | last flag (8) | target opcode (23:16)
cdw13      fragment sequence number
cdw14      total payload length (every fragment carries it)
mptr,prp1, 32 bytes of fragment payload
prp2,cdw12,
cdw15
=========  ==========================================================
"""

from __future__ import annotations

import itertools
import struct
from dataclasses import dataclass
from typing import Dict, Optional

from repro.datapath import names as dp_names
from repro.host.driver import NvmeDriver
from repro.nvme.command import NvmeCommand
from repro.nvme.constants import (
    BANDSLIM_FRAGMENT_CAPACITY,
    IoOpcode,
    StatusCode,
    VendorOpcode,
)
from repro.nvme.passthrough import PassthruRequest
from repro.pcie.traffic import EVT_INLINE_FALLBACK
from repro.ssd.controller import CommandContext, CommandResult
from repro.ssd.device import OpenSsd
from repro.transfer.base import TransferMethod, TransferStats

_LAST_FLAG = 1 << 8


def pack_fragment(stream: int, seq: int, total_len: int, frag: bytes,
                  last: bool, target_opcode: int,
                  target_cdw10: int = 0) -> NvmeCommand:
    """Encode one payload fragment into a vendor command.

    *target_cdw10* carries the logical command's CDW10 (e.g. the write
    offset) in the fragment's CDW3 — CDW2 must stay zero so the fragment
    is never mistaken for a ByteExpress command.
    """
    if not 0 < len(frag) <= BANDSLIM_FRAGMENT_CAPACITY:
        raise ValueError(
            f"fragment must be 1..{BANDSLIM_FRAGMENT_CAPACITY} bytes")
    padded = frag + b"\x00" * (BANDSLIM_FRAGMENT_CAPACITY - len(frag))
    mptr, prp1, prp2 = struct.unpack("<QQQ", padded[:24])
    cdw12, cdw15 = struct.unpack("<II", padded[24:32])
    cdw11 = len(frag) | (_LAST_FLAG if last else 0) | ((target_opcode & 0xFF) << 16)
    return NvmeCommand(opcode=VendorOpcode.BANDSLIM_FRAG,
                       cdw3=target_cdw10,
                       cdw10=stream, cdw11=cdw11, cdw13=seq, cdw14=total_len,
                       mptr=mptr, prp1=prp1, prp2=prp2,
                       cdw12=cdw12, cdw15=cdw15)


@dataclass(frozen=True)
class FragmentView:
    stream: int
    seq: int
    total_len: int
    data: bytes
    last: bool
    target_opcode: int
    target_cdw10: int = 0


def unpack_fragment(cmd: NvmeCommand) -> FragmentView:
    """Decode a vendor fragment command (device side)."""
    if cmd.opcode != VendorOpcode.BANDSLIM_FRAG:
        raise ValueError(f"not a BandSlim fragment: opcode {cmd.opcode:#x}")
    frag_len = cmd.cdw11 & 0xFF
    if not 0 < frag_len <= BANDSLIM_FRAGMENT_CAPACITY:
        raise ValueError(f"bad fragment length {frag_len}")
    raw = (struct.pack("<QQQ", cmd.mptr, cmd.prp1, cmd.prp2)
           + struct.pack("<II", cmd.cdw12, cmd.cdw15))
    return FragmentView(stream=cmd.cdw10, seq=cmd.cdw13, total_len=cmd.cdw14,
                        data=raw[:frag_len], last=bool(cmd.cdw11 & _LAST_FLAG),
                        target_opcode=(cmd.cdw11 >> 16) & 0xFF,
                        target_cdw10=cmd.cdw3)


@dataclass
class _StreamState:
    buffer: bytearray
    expected_seq: int
    total_len: int


class BandSlimDeviceLayer:
    """Device firmware: fragment reassembly in front of the real handlers.

    This is the "dedicated software layer ... to manage fragment ordering"
    the paper charges BandSlim for; its per-fragment and per-payload costs
    come from the timing model.
    """

    def __init__(self, ssd: OpenSsd) -> None:
        self.ssd = ssd
        self._streams: Dict[int, _StreamState] = {}
        ssd.controller.register_handler(VendorOpcode.BANDSLIM_FRAG,
                                        self._on_fragment, data_phase=False)
        self.fragments = 0
        self.payloads = 0

    def _on_fragment(self, ctx: CommandContext) -> CommandResult:
        timing = self.ssd.config.timing
        self.ssd.clock.advance(timing.bandslim_frag_device_ns)
        try:
            view = unpack_fragment(ctx.cmd)
        except ValueError:
            return CommandResult(StatusCode.INVALID_FIELD)
        self.fragments += 1

        state = self._streams.get(view.stream)
        if state is None:
            state = _StreamState(bytearray(), 0, view.total_len)
            self._streams[view.stream] = state
        if view.seq != state.expected_seq:
            # Serialisation violated — drop the stream and fail.
            del self._streams[view.stream]
            return CommandResult(StatusCode.INVALID_FIELD)
        state.expected_seq += 1
        state.buffer += view.data

        if not view.last:
            # Intermediate fragments are acknowledged implicitly by the
            # final fragment's completion — BandSlim firmware behaviour.
            return CommandResult(suppress_cqe=True)
        del self._streams[view.stream]
        if len(state.buffer) != state.total_len:
            return CommandResult(StatusCode.DATA_TRANSFER_ERROR)
        self.ssd.clock.advance(timing.bandslim_task_device_ns)
        self.payloads += 1
        inner = CommandContext(
            cmd=NvmeCommand(opcode=view.target_opcode, cid=ctx.cmd.cid,
                            cdw10=view.target_cdw10, cdw12=state.total_len),
            qid=ctx.qid, data=bytes(state.buffer), transport=dp_names.TRANSPORT_BANDSLIM)
        return self.ssd.controller.dispatch_local(inner)


class BandSlimTransfer(TransferMethod):
    """Host half: fragment planning, per-fragment command issue."""

    name = dp_names.BANDSLIM

    def __init__(self, driver: NvmeDriver, device_layer: BandSlimDeviceLayer) -> None:
        self.driver = driver
        self.device_layer = device_layer
        self._streams = itertools.count(1)

    def write(self, payload: bytes, opcode: int = IoOpcode.WRITE,
              cdw10: int = 0, cdw11: int = 0, nsid: int = 1,
              qid: Optional[int] = None) -> TransferStats:
        if not payload:
            raise ValueError("BandSlim transfer requires a payload")
        if not self.driver.breaker.allow_inline():
            # Circuit breaker open: the inline paths are misbehaving, so
            # deliver through the always-correct PRP baseline.  The stats
            # keep this method's name — the caller asked for BandSlim and
            # the fallback is an implementation detail of degraded mode.
            self.driver.inline_fallbacks += 1
            self.driver.link.counter.record_event(EVT_INLINE_FALLBACK)
            req = PassthruRequest(opcode=opcode, nsid=nsid, data=payload,
                                  cdw10=cdw10, cdw11=cdw11)
            res = self.driver.passthru(req, method=dp_names.PRP, qid=qid)
            return TransferStats(method=self.name, payload_len=len(payload),
                                 latency_ns=res.latency_ns,
                                 pcie_bytes=res.pcie_bytes,
                                 commands=1, status=res.status)
        qid = qid if qid is not None else self.driver.io_qids[0]
        clock = self.driver.clock
        timing = self.driver.timing
        counter = self.driver.link.counter
        start_ns, start_bytes = clock.now, counter.total_bytes

        clock.advance(timing.passthrough_ns)
        # The fragment-management software layer (per payload).
        clock.advance(timing.bandslim_task_host_ns)

        stream = next(self._streams) & 0xFFFFFFFF
        cap = BANDSLIM_FRAGMENT_CAPACITY
        pieces = [payload[off:off + cap] for off in range(0, len(payload), cap)]
        sq = self.driver.queue(qid).sq
        if len(pieces) > sq.space():
            # A torn fragment stream would wedge the device-side
            # reassembly; refuse before inserting anything.
            raise ValueError(
                f"payload needs {len(pieces)} fragment commands but "
                f"SQ{qid} has {sq.space()} free slots")
        for seq, piece in enumerate(pieces):
            last = seq == len(pieces) - 1
            frag = pack_fragment(stream, seq, len(payload), piece,
                                 last=last, target_opcode=opcode,
                                 target_cdw10=cdw10)
            clock.advance(timing.bandslim_frag_host_ns)
            # Every fragment is a full command with its own SQE; the tail
            # update is published once the sequence is in place.  Only the
            # final fragment produces a CQE (intermediates are suppressed
            # by the device layer), so only its CID is tracked as live.
            self.driver.submit_raw(frag, qid, ring=last,
                                   expect_completion=last)

        cqe = self.driver.wait(qid)
        status = cqe.status
        if cqe.ok:
            self.driver.breaker.record_success()
        elif cqe.retryable:
            # Transient transfer fault on the inline path (semantic
            # failures would fail on PRP too, so they don't count).
            self.driver.breaker.record_failure()
        return TransferStats(method=self.name, payload_len=len(payload),
                             latency_ns=clock.now - start_ns,
                             pcie_bytes=counter.total_bytes - start_bytes,
                             commands=len(pieces), status=status)
