"""Transfer methods: every mechanism the paper compares, one interface.

Use :func:`make_methods` to build the full comparison suite over a fresh
device + driver pair — this is what the Figure 5/6/7 benchmarks sweep.
"""

from typing import Dict, Optional

from repro.host.driver import NvmeDriver
from repro.ssd.device import OpenSsd
from repro.transfer.bandslim import (
    BandSlimDeviceLayer,
    BandSlimTransfer,
    FragmentView,
    pack_fragment,
    unpack_fragment,
)
from repro.transfer.base import AggregateStats, TransferMethod, TransferStats
from repro.transfer.byteexpress import ByteExpressTransfer, TaggedByteExpressTransfer
from repro.transfer.hybrid_transfer import HybridTransfer
from repro.transfer.mmio_transfer import MmioByteInterface, MmioTransfer
from repro.transfer.prp_transfer import PrpTransfer, SglTransfer


def make_methods(ssd: OpenSsd, driver: NvmeDriver,
                 include_mmio: bool = True) -> Dict[str, TransferMethod]:
    """Build the standard method suite bound to one device/driver pair."""
    prp = PrpTransfer(driver)
    byteexpress = ByteExpressTransfer(driver)
    methods: Dict[str, TransferMethod] = {
        "prp": prp,
        "sgl": SglTransfer(driver),
        "byteexpress": byteexpress,
        "bandslim": BandSlimTransfer(driver, BandSlimDeviceLayer(ssd)),
        "hybrid": HybridTransfer(byteexpress, prp),
    }
    if include_mmio:
        methods["mmio"] = MmioTransfer(ssd, MmioByteInterface(ssd))
    return methods


__all__ = [
    "TransferMethod",
    "TransferStats",
    "AggregateStats",
    "PrpTransfer",
    "SglTransfer",
    "ByteExpressTransfer",
    "TaggedByteExpressTransfer",
    "BandSlimTransfer",
    "BandSlimDeviceLayer",
    "pack_fragment",
    "unpack_fragment",
    "FragmentView",
    "MmioTransfer",
    "MmioByteInterface",
    "HybridTransfer",
    "make_methods",
]
