"""Transfer methods: every mechanism the paper compares, one interface.

Use :func:`make_methods` to build the full comparison suite over a fresh
device + driver pair — this is what the Figure 5/6/7 benchmarks sweep.
The suite is built from the datapath registry
(:mod:`repro.datapath.registry`): registering a new method there makes
it appear here (and in the CLI, engine, and sweeps) automatically.
"""

from typing import Dict

from repro.datapath import registry as datapath_registry
from repro.host.driver import NvmeDriver
from repro.ssd.context import MODE_TAGGED
from repro.ssd.device import OpenSsd
from repro.transfer.bandslim import (
    BandSlimDeviceLayer,
    BandSlimTransfer,
    FragmentView,
    pack_fragment,
    unpack_fragment,
)
from repro.transfer.base import AggregateStats, TransferMethod, TransferStats
from repro.transfer.byteexpress import ByteExpressTransfer, TaggedByteExpressTransfer
from repro.transfer.hybrid_transfer import HybridTransfer
from repro.transfer.mmio_transfer import MmioByteInterface, MmioTransfer
from repro.transfer.pio_transfer import PioCoherentInterface, PioCoherentTransfer
from repro.transfer.prp_transfer import PrpTransfer, SglTransfer


def make_methods(ssd: OpenSsd, driver: NvmeDriver,
                 include_mmio: bool = True) -> Dict[str, TransferMethod]:
    """Build the standard method suite bound to one device/driver pair.

    Every registry spec with a factory contributes, gated by its caps:
    ``bar_window`` methods only when *include_mmio* (the BAR byte window
    is an opt-in testbed feature), ``tag_reassembly`` methods only when
    the device controller actually runs in tagged mode (a queue-local
    controller would misparse self-describing chunks).
    """
    methods: Dict[str, TransferMethod] = {}
    for spec in datapath_registry.specs():
        if spec.factory is None:
            continue
        if spec.caps.bar_window and not include_mmio:
            continue
        if spec.caps.tag_reassembly and ssd.controller.mode != MODE_TAGGED:
            continue
        methods[spec.name] = spec.factory(ssd, driver, methods)
    return methods


__all__ = [
    "TransferMethod",
    "TransferStats",
    "AggregateStats",
    "PrpTransfer",
    "SglTransfer",
    "ByteExpressTransfer",
    "TaggedByteExpressTransfer",
    "BandSlimTransfer",
    "BandSlimDeviceLayer",
    "pack_fragment",
    "unpack_fragment",
    "FragmentView",
    "MmioTransfer",
    "MmioByteInterface",
    "PioCoherentTransfer",
    "PioCoherentInterface",
    "HybridTransfer",
    "make_methods",
]
