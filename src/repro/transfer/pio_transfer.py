"""Coherent-link PIO transfer (arXiv 2409.08141 style).

The coherent-interconnect comparison point: the host maps the device's
payload buffer cacheably over a coherent link (CXL.mem-class) and moves
small payloads with plain loads and stores — **no doorbells, no DMA
command fetch, no CQEs**.  A store burst lands the payload, one more
store to the commit word hands it to firmware, and completion is
observed by polling a status word that the coherence protocol keeps
fresh (far cheaper than the MMIO comparator's uncached register read).

Like the MMIO byte interface this bypasses NVMe entirely — it is the
*other* "just use loads/stores" design the paper's compatibility
argument weighs against.  Unlike MMIO, every access is a coherent
cacheline transaction: stores pipeline instead of serialising at the
write-combining buffer, which is why its per-line costs undercut
``mmio_cacheline_ns``.

Traffic accounting: every store and the status poll are charged to
``CAT_PIO_DATA`` — the method produces zero doorbell, command-fetch,
and CQE traffic by construction, which the crash harness also relies
on (a ``pio_coherent`` run only offers TLP cut opportunities).
"""

from __future__ import annotations

from typing import Optional

from repro.datapath import names as dp_names
from repro.nvme.command import NvmeCommand
from repro.nvme.constants import IoOpcode, StatusCode
from repro.pcie.mmio import BYTE_WINDOW_SIZE
from repro.pcie.traffic import CAT_PIO_DATA
from repro.ssd.controller import CommandContext
from repro.ssd.device import OpenSsd
from repro.transfer.base import TransferMethod, TransferStats

#: BAR word the host stores the payload length to, committing the write.
PIO_COMMIT_REG = 0x3000
#: Status word the host polls; coherently cached on real hardware.
PIO_STATUS_REG = 0x3004

_CACHELINE = 64


class PioCoherentInterface:
    """Device half: latch coherent stores, dispatch to firmware handlers."""

    def __init__(self, ssd: OpenSsd,
                 target_opcode: int = IoOpcode.WRITE) -> None:
        self.ssd = ssd
        self.target_opcode = target_opcode
        self.payloads = 0
        ssd.bar.on_write(PIO_COMMIT_REG, self._on_commit)

    def _on_commit(self, length: int) -> None:
        timing = self.ssd.config.timing
        if length == 0 or length > BYTE_WINDOW_SIZE:
            self.ssd.bar.write32(PIO_STATUS_REG, StatusCode.INVALID_FIELD)
            return
        lines = (length + _CACHELINE - 1) // _CACHELINE
        self.ssd.clock.advance(timing.pio_latch_ns * lines)
        payload = self.ssd.bar.window_read(0, length)
        ctx = CommandContext(
            cmd=NvmeCommand(opcode=self.target_opcode, cdw12=length),
            qid=0, data=payload, transport=dp_names.TRANSPORT_PIO)
        result = self.ssd.controller.dispatch_local(ctx)
        self.payloads += 1
        # Same write-once convention as the MMIO status register: 0 is
        # in-progress, so publish status+1 and let the host subtract.
        self.ssd.bar.write32(PIO_STATUS_REG, result.status + 1)


class PioCoherentTransfer(TransferMethod):
    """Host half: coherent cacheline stores + commit store + status poll."""

    name = dp_names.PIO_COHERENT

    def __init__(self, ssd: OpenSsd, interface: PioCoherentInterface) -> None:
        self.ssd = ssd
        self.interface = interface

    def write(self, payload: bytes, opcode: int = IoOpcode.WRITE,
              cdw10: int = 0, cdw11: int = 0, nsid: int = 1,
              qid: Optional[int] = None) -> TransferStats:
        if not payload:
            raise ValueError("PIO transfer requires a payload")
        if len(payload) > BYTE_WINDOW_SIZE:
            raise ValueError(
                f"payload exceeds the {BYTE_WINDOW_SIZE} B byte window")
        clock = self.ssd.clock
        timing = self.ssd.config.timing
        link = self.ssd.link
        counter = link.counter
        start_ns, start_bytes = clock.now, counter.total_bytes

        self.interface.target_opcode = opcode
        self.ssd.bar.write32(PIO_STATUS_REG, 0)
        # Coherent cacheline stores carrying the payload.
        for off in range(0, len(payload), _CACHELINE):
            line = payload[off:off + _CACHELINE]
            self.ssd.bar.window_write(off, line)
            link.host_mmio_write(len(line), CAT_PIO_DATA)
            clock.advance(timing.pio_store_ns)
        # The commit word is just one more coherent store — there is no
        # doorbell on this path.
        self.ssd.bar.write32(PIO_COMMIT_REG, len(payload))
        link.host_mmio_write(4, CAT_PIO_DATA)
        clock.advance(timing.pio_store_ns)
        # Poll the status word: a coherence-protocol read, not an
        # uncached MMIO round trip.
        link.host_mmio_read(4, CAT_PIO_DATA)
        clock.advance(timing.pio_poll_ns)
        raw_status = self.ssd.bar.read32(PIO_STATUS_REG)
        status = (raw_status - 1) if raw_status else StatusCode.INTERNAL_ERROR

        return TransferStats(method=self.name, payload_len=len(payload),
                             latency_ns=clock.now - start_ns,
                             pcie_bytes=counter.total_bytes - start_bytes,
                             commands=0, status=status)
