"""PCIe MMIO byte-interface transfer (paper §3.1, Figure 3(b)).

The 2B-SSD / ByteFS comparator: the host bypasses the NVMe command path
entirely and stores the payload straight into a BAR-mapped device buffer
as 64-byte write-combined cachelines, then writes a commit register with
the length.  The device latches the lines and hands the payload to
firmware.  Completion is observed by polling a status register — an
uncached MMIO *read*, a full link round trip.

This path is fast and stays fast beyond 1 KB (the property §4.2 concedes
to MMIO designs), but it is the approach the paper rejects for
compatibility reasons: it needs a new host interface layer and device
buffer management outside NVMe.  We include it so the ablation can show
the trade-off quantitatively.
"""

from __future__ import annotations

from typing import Optional

from repro.datapath import names as dp_names
from repro.nvme.command import NvmeCommand
from repro.nvme.constants import IoOpcode, StatusCode
from repro.pcie.mmio import BYTE_WINDOW_SIZE
from repro.pcie.traffic import CAT_DOORBELL, CAT_MMIO_DATA
from repro.ssd.controller import CommandContext
from repro.ssd.device import OpenSsd
from repro.transfer.base import TransferMethod, TransferStats

#: BAR register the host writes to commit a byte-window payload.
MMIO_COMMIT_REG = 0x2000
#: BAR register the host polls for completion status.
MMIO_STATUS_REG = 0x2004

_CACHELINE = 64


class MmioByteInterface:
    """Device half: latch window writes, dispatch to firmware handlers."""

    def __init__(self, ssd: OpenSsd, target_opcode: int = IoOpcode.WRITE) -> None:
        self.ssd = ssd
        self.target_opcode = target_opcode
        self.payloads = 0
        ssd.bar.on_write(MMIO_COMMIT_REG, self._on_commit)

    def _on_commit(self, length: int) -> None:
        timing = self.ssd.config.timing
        if length == 0 or length > BYTE_WINDOW_SIZE:
            self.ssd.bar.write32(MMIO_STATUS_REG, StatusCode.INVALID_FIELD)
            return
        lines = (length + _CACHELINE - 1) // _CACHELINE
        self.ssd.clock.advance(timing.mmio_latch_ns * lines)
        payload = self.ssd.bar.window_read(0, length)
        ctx = CommandContext(
            cmd=NvmeCommand(opcode=self.target_opcode, cdw12=length),
            qid=0, data=payload, transport=dp_names.TRANSPORT_MMIO)
        result = self.ssd.controller.dispatch_local(ctx)
        self.payloads += 1
        # Status registers are write-once-per-op: 0 means in-progress, so
        # publish status+1 and let the host subtract.
        self.ssd.bar.write32(MMIO_STATUS_REG, result.status + 1)


class MmioTransfer(TransferMethod):
    """Host half: cacheline stores + commit + status poll."""

    name = dp_names.MMIO

    def __init__(self, ssd: OpenSsd, interface: MmioByteInterface) -> None:
        self.ssd = ssd
        self.interface = interface

    def write(self, payload: bytes, opcode: int = IoOpcode.WRITE,
              cdw10: int = 0, cdw11: int = 0, nsid: int = 1,
              qid: Optional[int] = None) -> TransferStats:
        if not payload:
            raise ValueError("MMIO transfer requires a payload")
        if len(payload) > BYTE_WINDOW_SIZE:
            raise ValueError(
                f"payload exceeds the {BYTE_WINDOW_SIZE} B byte window")
        clock = self.ssd.clock
        timing = self.ssd.config.timing
        link = self.ssd.link
        counter = link.counter
        start_ns, start_bytes = clock.now, counter.total_bytes

        self.interface.target_opcode = opcode
        self.ssd.bar.write32(MMIO_STATUS_REG, 0)
        # Write-combined cacheline stores carrying the payload.
        for off in range(0, len(payload), _CACHELINE):
            line = payload[off:off + _CACHELINE]
            self.ssd.bar.window_write(off, line)
            link.host_mmio_write(len(line), CAT_MMIO_DATA)
            clock.advance(timing.mmio_cacheline_ns)
        # Commit register write triggers device-side processing.
        self.ssd.bar.write32(MMIO_COMMIT_REG, len(payload))
        link.host_mmio_write(4, CAT_DOORBELL)
        clock.advance(timing.doorbell_write_ns)
        # Poll the status register: one uncached MMIO read round trip.
        clock.advance(link.host_mmio_read(4, CAT_DOORBELL))
        raw_status = self.ssd.bar.read32(MMIO_STATUS_REG)
        status = (raw_status - 1) if raw_status else StatusCode.INTERNAL_ERROR

        return TransferStats(method=self.name, payload_len=len(payload),
                             latency_ns=clock.now - start_ns,
                             pcie_bytes=counter.total_bytes - start_bytes,
                             commands=0, status=status)
