"""The controller's command-fetch unit, decomposed out of the monolith.

:class:`FetchUnit` owns the ``get_nvme_cmd`` analogue: shadow-doorbell
polling/sync, single and burst SQE DMA fetch, the ByteExpress inline
detection at the fetch point (the paper's <20-line firmware hook), and
tagged-chunk reassembly feeding.  It is a *unit* of the controller —
queue state, stats counters and fault injection all live on the
controller (the orchestrator); the unit reads and advances them through
``self.ctrl`` so external instrumentation that watches controller
attributes keeps working unchanged.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.core.controller_ext import (
    ChunkCorruptionError,
    DeviceSqState,
    InlineFetchError,
    SqeWindow,
    fetch_inline_payload,
)
from repro.core.inline_command import InlineEncodingError, inspect_command
from repro.faults.plan import CORRUPT_INLINE_LENGTH
from repro.core.reassembly import ReassemblyError, parse_tagged, tagged_chunk_count
from repro.datapath.decoders import INLINE_DECODER
from repro.host.shadow import SLOT_SIZE
from repro.nvme.command import NvmeCommand
from repro.nvme.constants import SQE_SIZE, StatusCode
from repro.pcie import tlp as tlpmod
from repro.pcie.traffic import CAT_CMD_FETCH, CAT_INLINE_CHUNK, CAT_SHADOW_SYNC
from repro.ssd.context import (
    ADMIN_QID,
    MODE_QUEUE_LOCAL,
    MODE_TAGGED,
    CommandContext,
    CommandResult,
    DeferredCommand,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.ssd.controller import NvmeController


class FetchUnit:
    """Doorbell polling, SQE fetch (single + burst), inline detection."""

    def __init__(self, ctrl: "NvmeController") -> None:
        self.ctrl = ctrl
        # The single-SQE fetch shape never changes; build its TLP batch
        # once instead of per command.
        self._sqe_fetch_batch = tlpmod.device_dma_read(SQE_SIZE,
                                                       ctrl.link.config)

    # ------------------------------------------------------------------
    # shadow doorbells (DBBUF): device-side poll / sync
    # ------------------------------------------------------------------
    def shadow_span_bytes(self) -> int:
        """Bytes of the per-queue slot array the device reads/writes."""
        io_qids = [q for q in self.ctrl._sqs if q != ADMIN_QID]
        return SLOT_SIZE * (max(io_qids) + 1) if io_qids else 0

    def peek_shadow(self) -> bool:
        """The device's idle poll of the shadow page: does it publish a
        tail we have not latched?  Functional comparison only — the
        productive DMA read is charged once, in :meth:`sync_shadow`.
        Out-of-range (torn) values never look like work."""
        ctrl = self.ctrl
        for qid, state in ctrl._sqs.items():
            if qid == ADMIN_QID:
                continue
            tail = ctrl._shadow.read_sq_tail(qid)
            if 0 <= tail < state.depth and tail != ctrl._sq_tails[qid]:
                ctrl._shadow_stale = True
                return True
        return False

    def sync_shadow(self) -> None:
        """Latch every SQ tail and CQ head with ONE DMA read of the
        shadow array — the burst-mode replacement for N doorbell TLPs.

        Validation matches ``note_sq_doorbell``: a torn or stale
        out-of-range value is ignored (and counted), never trusted — the
        fetch path can therefore never read past a sanely published
        tail.
        """
        ctrl = self.ctrl
        span = self.shadow_span_bytes()
        if span == 0:
            ctrl._shadow_stale = False
            return
        with ctrl.clock.span("ctrl.shadow_sync"):
            ctrl.link.record_only(
                CAT_SHADOW_SYNC,
                tlpmod.device_dma_read(span, ctrl.link.config))
            ctrl.clock.advance(ctrl.timing.shadow_sync_ns)
        for qid, state in ctrl._sqs.items():
            if qid == ADMIN_QID:
                continue
            tail = ctrl._shadow.read_sq_tail(qid)
            if 0 <= tail < state.depth:
                ctrl._sq_tails[qid] = tail
            else:
                ctrl.shadow_rejects += 1
        for qid, cq in ctrl._cqs.items():
            if qid == ADMIN_QID:
                continue
            head = ctrl._shadow.read_cq_head(qid)
            if 0 <= head < cq.depth:
                cq.host_head = head
            else:
                ctrl.shadow_rejects += 1
        ctrl._shadow_stale = False
        ctrl.shadow_syncs += 1
        ctrl._busy_since_park = True

    def park(self) -> None:
        """Publish eventidx values + the park record with one DMA write
        (the shadow-doorbell half of the device-idle transition).  A
        no-op unless the device did work since the last park: an idle
        host polling an idle device must not generate traffic.
        """
        ctrl = self.ctrl
        if ctrl._shadow is None or not ctrl._busy_since_park:
            return
        with ctrl.clock.span("ctrl.shadow_sync"):
            for qid in ctrl._sqs:
                if qid != ADMIN_QID:
                    ctrl._shadow.write_sq_eventidx(qid, ctrl._sq_tails[qid])
            ctrl._shadow.write_poll_until(
                ctrl.clock.now + ctrl.config.shadow_idle_ns)
            ctrl.link.record_only(
                CAT_SHADOW_SYNC,
                tlpmod.device_dma_write(self.shadow_span_bytes() + 8,
                                        ctrl.link.config))
            ctrl.clock.advance(ctrl.timing.shadow_park_ns)
        ctrl._busy_since_park = False

    # ------------------------------------------------------------------
    # command fetch (the get_nvme_cmd analogue)
    # ------------------------------------------------------------------
    def fetch_sqe(self, state: DeviceSqState) -> bytes:
        """64 B DMA fetch of the entry at the device head."""
        raw = self.ctrl.host_memory.read(state.slot_addr(state.head), SQE_SIZE)
        state.advance()
        return raw

    def resync_sq(self, qid: int) -> None:
        """Recover a queue whose inline sequence can no longer be parsed.

        Once the inline length is lost, the firmware cannot tell payload
        chunks from commands; interpreting them as commands would spray
        garbage completions.  Real firmware handles this class of queue
        error by discarding the published window and letting the host's
        retry logic resubmit whole commands — we do the same: jump the
        device head to the doorbell'd tail.
        """
        ctrl = self.ctrl
        state = ctrl._sqs[qid]
        if state.head != ctrl._sq_tails[qid]:
            state.head = ctrl._sq_tails[qid]
            ctrl.queue_resyncs += 1

    def service_queue(self, qid: int) -> int:
        """Service *qid*'s slot in the sweep: one command, or — when a
        doorbell advanced the tail by several entries and burst mode is
        on — every command whose SQE landed in one burst window.
        Returns the number of commands serviced."""
        ctrl = self.ctrl
        qos = ctrl.qos
        if qos is not None and qid != ADMIN_QID and qos.governs(qid):
            return self.service_queue_qos(qid, qos)
        # Cheap guard first: ``burst_fetch`` re-checks, but skipping its
        # whole frame matters when burst mode is off (the common case).
        if (ctrl.config.burst_limit <= 1 or qid == ADMIN_QID
                or ctrl.mode != MODE_QUEUE_LOCAL):
            window = None
        else:
            window = self.burst_fetch(qid)
        if window is None:
            self.fetch_and_execute(qid)
            return 1
        state = ctrl._sqs[qid]
        serviced = 0
        while (window.remaining > 0 and window.next_index == state.head
               and ctrl._pending_on(qid) > 0):
            self.fetch_and_execute(qid, window=window)
            serviced += 1
        return serviced

    def service_queue_qos(self, qid: int, qos) -> int:
        """Service a QoS-governed queue: at most the arbiter's grant
        (the WRR quantum clamped by the ops bucket), each command gated
        by the byte bucket.  A denied visit costs nothing here — while
        other queues make progress the sweep's clock already moves; the
        controller charges one doorbell poll only when an *entire*
        sweep is throttled flat (see ``poll_once``), which keeps
        throttled drains live without taxing well-behaved neighbors.
        """
        ctrl = self.ctrl
        grant = qos.grant(qid)
        serviced = 0
        if grant > 0:
            window = None
            if (grant > 1 and ctrl.config.burst_limit > 1
                    and ctrl.mode == MODE_QUEUE_LOCAL):
                window = self.burst_fetch(qid, limit=grant)
            state = ctrl._sqs[qid]
            while serviced < grant and ctrl._pending_on(qid) > 0:
                cost = self.peek_cost(state)
                if not qos.allow_bytes(qid, cost):
                    # Mid-burst exhaustion: clamp, never overdraw.  Any
                    # prefetched-but-unexecuted window entries are
                    # discarded; the head has not advanced past them.
                    break
                if window is not None and (
                        window.remaining <= 0
                        or window.next_index != state.head):
                    window = None
                self.fetch_and_execute(qid, window=window)
                qos.charge(qid, 1, cost)
                serviced += 1
        return serviced

    def peek_cost(self, state: DeviceSqState) -> int:
        """Wire cost (bytes) of the command at *state*'s head, without
        fetching it: the SQE itself plus its inline chunks or its PRP
        data length.  Functional peek only — the productive DMA is
        charged by the fetch that follows (same pattern as
        :meth:`peek_shadow`).  Malformed entries cost one SQE; the
        fetch path's error handling deals with them.
        """
        raw = self.ctrl.host_memory.read(state.slot_addr(state.head),
                                         SQE_SIZE)
        try:
            cmd = NvmeCommand.unpack(raw)
            info = inspect_command(cmd)
        except (ValueError, InlineEncodingError):
            return SQE_SIZE
        if info.is_inline:
            return SQE_SIZE * (1 + info.chunks)
        if self.ctrl._data_phase.get(cmd.opcode, True):
            return SQE_SIZE + cmd.cdw12
        return SQE_SIZE

    def burst_fetch(self, qid: int,
                    limit: Optional[int] = None) -> Optional[SqeWindow]:
        """Fetch min(pending, burst_limit) contiguous SQEs in ONE large
        DMA read (one MRd + its CplD batch instead of one pair per SQE).

        The window is clamped to the *published* tail — a torn or stale
        shadow value was already rejected by the doorbell/sync
        validation, so the burst can never read past what the host
        actually doorbell'd — and never wraps the ring end, keeping the
        transfer a single contiguous MRd.  Queue-local mode only: tagged
        chunks interleave across queues per-entry by design.
        """
        ctrl = self.ctrl
        if (ctrl.config.burst_limit <= 1 or qid == ADMIN_QID
                or ctrl.mode != MODE_QUEUE_LOCAL):
            return None
        state = ctrl._sqs[qid]
        count = min(ctrl._pending_on(qid), ctrl.config.burst_limit,
                    state.depth - state.head)
        if limit is not None and count > limit:
            count = limit  # QoS grant clamp: never prefetch past it
        if count <= 1:
            return None
        with ctrl.clock.span("ctrl.sq_fetch"):
            ctrl.clock.advance(ctrl.timing.doorbell_poll_ns)
            raw = ctrl.host_memory.read(state.slot_addr(state.head),
                                        count * SQE_SIZE)
            ctrl.link.record_only(
                CAT_CMD_FETCH,
                tlpmod.device_dma_read(count * SQE_SIZE, ctrl.link.config))
            ctrl.clock.advance(ctrl.timing.cmd_fetch_logic_ns)
        ctrl.burst_fetches += 1
        return SqeWindow(
            start=state.head, depth=state.depth,
            entries=[raw[i * SQE_SIZE:(i + 1) * SQE_SIZE]
                     for i in range(count)])

    def fetch_and_execute(self, qid: int,
                          window: Optional[SqeWindow] = None) -> None:
        ctrl = self.ctrl
        state = ctrl._sqs[qid]
        clock = ctrl.clock
        timing = ctrl.timing
        _span_start = clock.now
        try:
            raw = window.take(state.head) if window is not None else None
            if raw is not None:
                # Burst-prefetched: already on-die, decode cost only.
                state.advance()
                clock.advance(timing.burst_sqe_logic_ns)
            else:
                clock.advance(timing.doorbell_poll_ns)
                # fetch_sqe inlined: 64 B DMA read at the device head.
                raw = ctrl.host_memory.read(state.slot_addr(state.head),
                                            SQE_SIZE)
                state.advance()
                ctrl.link.record_only(CAT_CMD_FETCH, self._sqe_fetch_batch)
                clock.advance(timing.cmd_fetch_logic_ns)
            cmd = NvmeCommand.unpack(raw)

            if (cmd.inline_length and ctrl.faults.active
                    and ctrl.faults.fire(CORRUPT_INLINE_LENGTH)):
                # The reserved field arrived bit-flipped: the decode below
                # must detect it and fail the command, never mis-fetch.
                cmd.cdw2 = ctrl.faults.corrupt_length(cmd.cdw2)

            # --- ByteExpress detection (paper §3.3.1) -------------------
            try:
                info = inspect_command(cmd)
            except InlineEncodingError:
                ctrl.fetch_errors += 1
                self.resync_sq(qid)
                ctrl._complete(qid, cmd, CommandResult(
                    StatusCode.INVALID_FIELD, retryable=True))
                return

            if info.is_inline and not ctrl.byteexpress_enabled:
                # Defensive firmware: refuse rather than misparse chunks.
                ctrl.fetch_errors += 1
                state.advance(min(info.chunks, ctrl._pending_on(qid)))
                ctrl._complete(qid, cmd, CommandResult(StatusCode.INVALID_FIELD))
                return

            if info.is_inline and ctrl.mode == MODE_TAGGED:
                self.begin_tagged(qid, cmd, info.payload_len)
                return

            ctx = CommandContext(cmd, qid)
            if info.is_inline:
                try:
                    # Direct call into the decoder's implementation
                    # (``INLINE_DECODER.fetch`` is a thin wrapper).
                    ctx.data = fetch_inline_payload(
                        state, info, ctrl._sq_tails[qid],
                        ctrl.host_memory, ctrl.link, clock, timing,
                        injector=ctrl.faults, window=window)
                    ctx.transport = INLINE_DECODER.transport
                    ctrl.inline_payloads += 1
                except ChunkCorruptionError:
                    ctrl.fetch_errors += 1
                    self.resync_sq(qid)
                    ctrl._complete(qid, cmd, CommandResult(
                        StatusCode.DATA_TRANSFER_ERROR, retryable=True))
                    return
                except InlineFetchError:
                    ctrl.fetch_errors += 1
                    self.resync_sq(qid)
                    ctrl._complete(qid, cmd, CommandResult(
                        StatusCode.INVALID_FIELD, retryable=True))
                    return
        finally:
            clock.span_end("ctrl.sq_fetch", _span_start)

        ctrl._transfer_and_dispatch(qid, ctx)

    # ------------------------------------------------------------------
    # tagged (out-of-order) mode — paper §3.3.2 future work
    # ------------------------------------------------------------------
    def begin_tagged(self, qid: int, cmd: NvmeCommand,
                     payload_len: int) -> None:
        ctrl = self.ctrl
        payload_id = cmd.cdw3
        chunks = tagged_chunk_count(payload_len)
        try:
            ctrl._reassembly.expect(payload_id, payload_len)
        except ReassemblyError:
            ctrl.fetch_errors += 1
            ctrl._complete(qid, cmd, CommandResult(StatusCode.INVALID_FIELD))
            return
        ctrl._pending_chunks[qid] = ctrl._pending_chunks.get(qid, 0) + chunks
        ctrl._deferred.append(DeferredCommand(cmd, qid, payload_id))

    def fetch_tagged_chunk(self, qid: int) -> None:
        ctrl = self.ctrl
        state = ctrl._sqs[qid]
        if ctrl._pending_on(qid) == 0:
            return
        with ctrl.clock.span("ctrl.sq_fetch"):
            raw = self.fetch_sqe(state)
            ctrl.link.record_only(CAT_INLINE_CHUNK, self._sqe_fetch_batch)
            ctrl.clock.advance(ctrl.timing.chunk_fetch_ns)
        ctrl._pending_chunks[qid] -= 1
        try:
            payload = ctrl._reassembly.accept(raw)
        except ReassemblyError:
            ctrl.fetch_errors += 1
            return
        if payload is None:
            return
        payload_id, _, _, _ = parse_tagged(raw)
        for i, deferred in enumerate(ctrl._deferred):
            if deferred.payload_id == payload_id:
                ctrl._deferred.pop(i)
                ctx = CommandContext(cmd=deferred.cmd, qid=deferred.qid,
                                     data=payload,
                                     transport=INLINE_DECODER.transport)
                ctrl.inline_payloads += 1
                ctrl._transfer_and_dispatch(deferred.qid, ctx)
                return
        ctrl.fetch_errors += 1  # pragma: no cover - chunk without command
