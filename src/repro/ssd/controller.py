"""NVMe controller firmware model (the OpenSSD main loop).

Mirrors the Cosmos+ firmware structure the paper modified: the controller
decodes its own BAR registers (enable handshake, admin queue bases,
doorbells), polls SQ doorbells round-robin, DMA-fetches 64-byte commands,
interprets the data pointer (PRP or SGL), moves the data, invokes the
opcode handler, and posts completions — all against *device-side* queue
state only; host queue objects are never touched, exactly as on real
hardware where host and device share nothing but memory and registers.

ByteExpress hooks in where the paper's <20-line patch does — the
command-fetch routine: a non-zero reserved field makes the controller
fetch the following SQ entries *from the same queue* as payload chunks
before resuming the round-robin (queue-local mode).  The controller also
implements the paper's §3.3.2 future-work variant: *tagged* mode, where
chunks carry self-describing headers and the controller interleaves
fetches across queues, reassembling out-of-order.

Timing: device-side phase costs come from the calibrated
:class:`~repro.sim.config.TimingModel`; the PRP/SGL data path additionally
pays wire serialisation, which is what produces the 4 KB staircase of
Figure 1(b).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional

from repro.core.controller_ext import (
    ChunkCorruptionError,
    DeviceSqState,
    InlineFetchError,
    SqeWindow,
    fetch_inline_payload,
)
from repro.core.inline_command import InlineEncodingError, inspect_command
from repro.core.reassembly import (
    ReassemblyBuffer,
    ReassemblyError,
    parse_tagged,
    tagged_chunk_count,
)
from repro.host.memory import HostMemory
from repro.host.shadow import SLOT_SIZE, ShadowDoorbells
from repro.nvme.command import NvmeCommand
from repro.nvme.completion import NvmeCompletion
from repro.nvme.constants import (
    CQE_SIZE,
    PAGE_SIZE,
    SQE_SIZE,
    AdminOpcode,
    Psdt,
    StatusCode,
)
from repro.nvme.identify import IdentifyController
from repro.nvme.prp import walk_prps
from repro.nvme.queues import CompletionQueue, CqOverrunError, SubmissionQueue
from repro.nvme.registers import (
    CC_ENABLE,
    CSTS_READY,
    REG_ACQ_LO,
    REG_AQA,
    REG_ASQ_LO,
    REG_CAP_LO,
    REG_CAP_HI,
    REG_CC,
    REG_CSTS,
    REG_VS,
    VERSION_1_4,
    cap_value,
    split_aqa,
)
from repro.nvme.sgl import SglDescriptor, SglType, walk_sgl
from repro.pcie import tlp as tlpmod
from repro.pcie.link import PCIeLink
from repro.pcie.mmio import BarSpace, cq_doorbell_offset, sq_doorbell_offset
from repro.pcie.traffic import (
    CAT_CMD_FETCH,
    CAT_CQE,
    CAT_DATA,
    CAT_INLINE_CHUNK,
    CAT_MSIX,
    CAT_PRP_LIST,
    CAT_SHADOW_SYNC,
)
from repro.sim.clock import SimClock
from repro.sim.config import SimConfig


#: Fetch-from-SQ modes (paper §3.3.2).
MODE_QUEUE_LOCAL = "queue_local"
MODE_TAGGED = "tagged"

#: Admin queue id.
ADMIN_QID = 0

#: Default bounded capacity of the service-order trace (ring buffer).
SERVICE_LOG_CAPACITY = 4096


@dataclass
class CommandContext:
    """Everything an opcode handler sees for one command."""

    cmd: NvmeCommand
    qid: int
    #: Host→device payload, however it was transferred (PRP, SGL, inline).
    data: Optional[bytes] = None
    #: How the payload arrived: "prp" | "sgl" | "inline" | None.
    transport: Optional[str] = None


@dataclass
class CommandResult:
    """Handler outcome."""

    status: int = StatusCode.SUCCESS
    result: int = 0
    #: Device→host data (for read-style commands); DMA'd before completion.
    read_data: Optional[bytes] = None
    #: Firmware may suppress the CQE (BandSlim intermediate fragments are
    #: acknowledged only through the final fragment's completion).
    suppress_cqe: bool = False
    #: Transient failure: the CQE's DNR bit is left clear so the host's
    #: retry loop may resubmit.  Semantic rejections keep the default
    #: (DNR set) — retrying a malformed command cannot succeed.
    retryable: bool = False


Handler = Callable[[CommandContext], CommandResult]


@dataclass
class DeviceCqState:
    """The controller's private completion-queue producer state."""

    qid: int
    base_addr: int
    depth: int
    tail: int = 0
    phase: int = 1
    #: Host consume pointer, learned from CQ head doorbell writes.
    host_head: int = 0

    def slot_addr(self, index: int) -> int:
        return self.base_addr + (index % self.depth) * CQE_SIZE

    def is_full(self) -> bool:
        return (self.tail + 1) % self.depth == self.host_head

    def post(self, cqe: NvmeCompletion, memory: HostMemory) -> None:
        if self.is_full():
            raise CqOverrunError(f"CQ{self.qid} overrun")
        cqe.phase = self.phase
        memory.write(self.slot_addr(self.tail), cqe.pack())
        self.tail = (self.tail + 1) % self.depth
        if self.tail == 0:
            self.phase ^= 1


@dataclass
class _DeferredCommand:
    """Tagged-mode command parked until its payload reassembles."""

    cmd: NvmeCommand
    qid: int
    payload_id: int


class NvmeController:
    """The device-side protocol engine."""

    def __init__(self, config: SimConfig, clock: SimClock, link: PCIeLink,
                 host_memory: HostMemory, bar: Optional[BarSpace] = None,
                 mode: str = MODE_QUEUE_LOCAL,
                 identify: Optional[IdentifyController] = None,
                 injector=None) -> None:
        if mode not in (MODE_QUEUE_LOCAL, MODE_TAGGED):
            raise ValueError(f"unknown fetch mode {mode!r}")
        if injector is None:
            from repro.faults.plan import NULL_INJECTOR
            injector = NULL_INJECTOR
        self.faults = injector
        self.config = config
        self.timing = config.timing
        self.clock = clock
        self.link = link
        self.host_memory = host_memory
        self.bar = bar if bar is not None else BarSpace()
        self.mode = mode
        # The device advertises its own capability (Cosmos+-class: 16 I/O
        # queues) — independent of how many the host wants to create.
        self.identify_data = identify or IdentifyController()
        #: Firmware support switch: stock firmware would misparse inline
        #: chunks as commands, so a safety-conscious build rejects them.
        self.byteexpress_enabled = True
        self._sqs: Dict[int, DeviceSqState] = {}
        self._sq_tails: Dict[int, int] = {}
        self._cqs: Dict[int, DeviceCqState] = {}
        self._sq_cq: Dict[int, int] = {}
        self._handlers: Dict[int, Handler] = {}
        self._data_phase: Dict[int, bool] = {}
        self._rr_order: List[int] = []
        self._rr_next = 0
        self.enabled = False
        # tagged-mode state
        self._reassembly = ReassemblyBuffer(
            max_in_flight=config.reassembly_in_flight)
        self._pending_chunks: Dict[int, int] = {}
        self._deferred: List[_DeferredCommand] = []
        #: Optional fetch-order trace: every serviced qid is appended.
        #: Off by default; :meth:`enable_service_log` arms it as a
        #: *bounded* ring buffer so long traced engine runs cannot grow
        #: memory without limit.
        self.service_log: Optional[Deque[int]] = None
        # shadow-doorbell state (armed by the DBBUF_CONFIG admin command)
        self._shadow: Optional[ShadowDoorbells] = None
        self._shadow_stale = False
        self._busy_since_park = False
        # CQE coalescing: buffered-but-unposted completion counts per CQ
        self._coalesced: Dict[int, int] = {}
        # stats
        self.commands_processed = 0
        self.admin_commands_processed = 0
        self.inline_payloads = 0
        self.fetch_errors = 0
        self.queue_resyncs = 0
        self.dropped_cqes = 0
        self.shadow_syncs = 0
        self.shadow_rejects = 0
        self.burst_fetches = 0
        self.cqe_flushes = 0
        self._publish_capabilities()

    def enable_service_log(
            self, capacity: int = SERVICE_LOG_CAPACITY) -> Deque[int]:
        """Arm the fetch-order trace, keeping only the last *capacity*
        serviced qids (a ring buffer — tracing a long run is safe)."""
        if capacity < 1:
            raise ValueError("service log capacity must be at least 1")
        self.service_log = deque(maxlen=capacity)
        return self.service_log

    # ------------------------------------------------------------------
    # register file
    # ------------------------------------------------------------------
    def _publish_capabilities(self) -> None:
        cap = cap_value(max_queue_entries=self.config.sq_depth)
        self.bar.write32(REG_CAP_LO, cap & 0xFFFFFFFF)
        self.bar.write32(REG_CAP_HI, cap >> 32)
        self.bar.write32(REG_VS, VERSION_1_4)
        self.bar.on_write(REG_CC, self._on_cc_write)

    def _on_cc_write(self, value: int) -> None:
        if value & CC_ENABLE and not self.enabled:
            self._enable()
        elif not value & CC_ENABLE and self.enabled:
            self._disable()

    def _enable(self) -> None:
        """CC.EN 0→1: latch the admin queue registers, come ready."""
        asq = self.bar.read32(REG_ASQ_LO)
        acq = self.bar.read32(REG_ACQ_LO)
        asq_depth, acq_depth = split_aqa(self.bar.read32(REG_AQA))
        if not asq or not acq:
            return  # driver forgot the bases; stay not-ready
        self._install_queue_pair(ADMIN_QID, asq, asq_depth, acq, acq_depth)
        self.enabled = True
        self.bar.write32(REG_CSTS, CSTS_READY)

    def _disable(self) -> None:
        """CC.EN 1→0: controller reset — drop all queue state."""
        self._sqs.clear()
        self._sq_tails.clear()
        self._cqs.clear()
        self._sq_cq.clear()
        self._rr_order.clear()
        self._rr_next = 0
        self._pending_chunks.clear()
        self._deferred.clear()
        self._shadow = None
        self._shadow_stale = False
        self._busy_since_park = False
        self._coalesced.clear()
        self.enabled = False
        self.bar.write32(REG_CSTS, 0)

    # ------------------------------------------------------------------
    # queue management
    # ------------------------------------------------------------------
    def _install_queue_pair(self, qid: int, sq_base: int, sq_depth: int,
                            cq_base: int, cq_depth: int) -> None:
        self.create_cq(qid, cq_base, cq_depth)
        self.create_sq(qid, sq_base, sq_depth, cq_qid=qid)

    def create_cq(self, qid: int, base: int, depth: int) -> None:
        if qid in self._cqs:
            raise ValueError(f"CQ {qid} already exists")
        if depth < 2:
            raise ValueError("CQ depth must be at least 2")
        self._cqs[qid] = DeviceCqState(qid=qid, base_addr=base, depth=depth)
        self.bar.on_write(cq_doorbell_offset(qid),
                          lambda head, q=qid: self.note_cq_head(q, head))

    def create_sq(self, qid: int, base: int, depth: int, cq_qid: int) -> None:
        if qid in self._sqs:
            raise ValueError(f"SQ {qid} already exists")
        if cq_qid not in self._cqs:
            raise ValueError(f"SQ {qid} references missing CQ {cq_qid}")
        if depth < 2:
            raise ValueError("SQ depth must be at least 2")
        self._sqs[qid] = DeviceSqState(qid=qid, base_addr=base, depth=depth)
        self._sq_tails[qid] = 0
        self._sq_cq[qid] = cq_qid
        self._rr_order.append(qid)
        self.bar.on_write(sq_doorbell_offset(qid),
                          lambda tail, q=qid: self.note_sq_doorbell(q, tail))

    def delete_sq(self, qid: int) -> None:
        if qid not in self._sqs:
            raise ValueError(f"no SQ {qid}")
        del self._sqs[qid]
        del self._sq_tails[qid]
        del self._sq_cq[qid]
        self._rr_order.remove(qid)
        self._rr_next = 0
        self._pending_chunks.pop(qid, None)

    def delete_cq(self, qid: int) -> None:
        if qid not in self._cqs:
            raise ValueError(f"no CQ {qid}")
        if qid in self._sq_cq.values():
            raise ValueError(f"CQ {qid} still referenced by an SQ")
        del self._cqs[qid]

    def register_queue_pair(self, sq: SubmissionQueue,
                            cq: CompletionQueue) -> None:
        """Convenience wiring from host queue objects (tests, direct use)."""
        if sq.qid in self._sqs:
            raise ValueError(f"queue pair {sq.qid} already registered")
        self._install_queue_pair(sq.qid, sq.base_addr, sq.depth,
                                 cq.base_addr, cq.depth)

    def note_sq_doorbell(self, qid: int, tail: int) -> None:
        state = self._sqs.get(qid)
        if state is None or not 0 <= tail < state.depth:
            return  # spec: bad doorbells are ignored (may set CSTS later)
        self._sq_tails[qid] = tail

    def note_cq_head(self, qid: int, head: int) -> None:
        state = self._cqs.get(qid)
        if state is None or not 0 <= head < state.depth:
            return
        state.host_head = head

    # ------------------------------------------------------------------
    # handler registration
    # ------------------------------------------------------------------
    def register_handler(self, opcode: int, handler: Handler,
                         data_phase: bool = True) -> None:
        """Attach firmware for an I/O *opcode*.

        *data_phase* declares whether the opcode moves host→device data
        through the data pointer (PRP/SGL) when CDW12 is non-zero — in
        real NVMe the transfer direction is defined per opcode, and
        BandSlim fragment commands carry their payload in command fields,
        not through a data pointer.
        """
        self._handlers[opcode] = handler
        self._data_phase[opcode] = data_phase

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def _pending_on(self, qid: int) -> int:
        state = self._sqs[qid]
        return (self._sq_tails[qid] - state.head) % state.depth

    # ------------------------------------------------------------------
    # shadow doorbells (DBBUF): device-side poll / sync / park
    # ------------------------------------------------------------------
    def _shadow_span_bytes(self) -> int:
        """Bytes of the per-queue slot array the device reads/writes."""
        io_qids = [q for q in self._sqs if q != ADMIN_QID]
        return SLOT_SIZE * (max(io_qids) + 1) if io_qids else 0

    def _peek_shadow(self) -> bool:
        """The device's idle poll of the shadow page: does it publish a
        tail we have not latched?  Functional comparison only — the
        productive DMA read is charged once, in :meth:`_sync_shadow`.
        Out-of-range (torn) values never look like work."""
        for qid, state in self._sqs.items():
            if qid == ADMIN_QID:
                continue
            tail = self._shadow.read_sq_tail(qid)
            if 0 <= tail < state.depth and tail != self._sq_tails[qid]:
                self._shadow_stale = True
                return True
        return False

    def _sync_shadow(self) -> None:
        """Latch every SQ tail and CQ head with ONE DMA read of the
        shadow array — the burst-mode replacement for N doorbell TLPs.

        Validation matches :meth:`note_sq_doorbell`: a torn or stale
        out-of-range value is ignored (and counted), never trusted — the
        fetch path can therefore never read past a sanely published
        tail.
        """
        span = self._shadow_span_bytes()
        if span == 0:
            self._shadow_stale = False
            return
        with self.clock.span("ctrl.shadow_sync"):
            self.link.record_only(
                CAT_SHADOW_SYNC,
                tlpmod.device_dma_read(span, self.link.config))
            self.clock.advance(self.timing.shadow_sync_ns)
        for qid, state in self._sqs.items():
            if qid == ADMIN_QID:
                continue
            tail = self._shadow.read_sq_tail(qid)
            if 0 <= tail < state.depth:
                self._sq_tails[qid] = tail
            else:
                self.shadow_rejects += 1
        for qid, cq in self._cqs.items():
            if qid == ADMIN_QID:
                continue
            head = self._shadow.read_cq_head(qid)
            if 0 <= head < cq.depth:
                cq.host_head = head
            else:
                self.shadow_rejects += 1
        self._shadow_stale = False
        self.shadow_syncs += 1
        self._busy_since_park = True

    def quiesce(self) -> None:
        """The device-idle transition, called by the host-side drive
        loops once the firmware loop runs dry.

        Flushes any coalesced completions, then (under shadow doorbells)
        publishes the per-queue eventidx values and the park record —
        the promise to keep polling the shadow page for another
        ``shadow_idle_ns`` — with one small DMA write.  A no-op unless
        the device did work since the last park: an idle host polling an
        idle device must not generate traffic.
        """
        self.flush_completions()
        if self._shadow is None or not self._busy_since_park:
            return
        with self.clock.span("ctrl.shadow_sync"):
            for qid in self._sqs:
                if qid != ADMIN_QID:
                    self._shadow.write_sq_eventidx(qid, self._sq_tails[qid])
            self._shadow.write_poll_until(
                self.clock.now + self.config.shadow_idle_ns)
            self.link.record_only(
                CAT_SHADOW_SYNC,
                tlpmod.device_dma_write(self._shadow_span_bytes() + 8,
                                        self.link.config))
            self.clock.advance(self.timing.shadow_park_ns)
        self._busy_since_park = False

    def has_pending(self) -> bool:
        if self._shadow is not None and not self._shadow_stale:
            self._peek_shadow()
        if self._shadow_stale:
            return True
        return any(self._pending_on(qid) > 0
                   or self._pending_chunks.get(qid, 0) > 0
                   for qid in self._sqs)

    def active_queue_count(self) -> int:
        """Queues with doorbell'd work the next sweep would service.

        The engine's completion reactor uses this to size the firmware's
        parallel service width (bounded by ``config.fetch_lanes``).
        """
        if self._shadow is not None and self._shadow_stale:
            self._sync_shadow()
        return sum(1 for qid in self._sqs
                   if self._pending_on(qid) > 0
                   or self._pending_chunks.get(qid, 0) > 0)

    def supports(self, opcode: int) -> bool:
        """Is firmware registered for *opcode*?  (Feature probing for
        layered transports such as BandSlim fragment reassembly.)"""
        return opcode in self._handlers

    def abort_payload(self, payload_id: int) -> None:
        """Drop tagged-reassembly state for an abandoned payload.

        The engine's timeout path calls this before resubmitting a
        tagged command under a fresh payload id, so half-received chunk
        state cannot pin SRAM forever.  Idempotent.
        """
        self._reassembly.abort(payload_id)

    def process_all(self) -> int:
        """Run the firmware loop until every queue is drained."""
        done = 0
        while self.has_pending():
            done += self.poll_once()
        self.quiesce()
        return done

    def poll_once(self) -> int:
        """One round-robin sweep over the doorbells.

        Fairness: the sweep *resumes from the queue after the last one it
        serviced* rather than restarting from a fixed position.  A full
        sweep advances ``_rr_next`` by exactly its own length, so the old
        code always began at the same queue — under sustained multi-queue
        load the lowest-numbered SQ was serviced first every sweep and
        high-numbered SQs saw systematically worse fetch latency.
        """
        if self._shadow is not None:
            if not self._shadow_stale:
                self._peek_shadow()
            if self._shadow_stale:
                self._sync_shadow()
        done = 0
        order = self._rr_order
        if not order:
            return 0
        start = self._rr_next
        for i in range(len(order)):
            idx = (start + i) % len(order)
            qid = order[idx]
            if self.mode == MODE_TAGGED and self._pending_chunks.get(qid, 0):
                self._fetch_tagged_chunk(qid)
                serviced = 1
            elif self._pending_on(qid) > 0:
                serviced = self._service_queue(qid)
            else:
                continue
            done += serviced
            self._rr_next = (idx + 1) % len(order)
            if self.service_log is not None:
                self.service_log.extend([qid] * serviced)
        if done:
            self._busy_since_park = True
        return done

    #: Backwards-compatible alias (pre-engine name).
    _poll_once = poll_once

    # ------------------------------------------------------------------
    # command fetch (the get_nvme_cmd analogue)
    # ------------------------------------------------------------------
    def _fetch_sqe(self, state: DeviceSqState) -> bytes:
        """64 B DMA fetch of the entry at the device head."""
        raw = self.host_memory.read(state.slot_addr(state.head), SQE_SIZE)
        state.advance()
        return raw

    def _resync_sq(self, qid: int) -> None:
        """Recover a queue whose inline sequence can no longer be parsed.

        Once the inline length is lost, the firmware cannot tell payload
        chunks from commands; interpreting them as commands would spray
        garbage completions.  Real firmware handles this class of queue
        error by discarding the published window and letting the host's
        retry logic resubmit whole commands — we do the same: jump the
        device head to the doorbell'd tail.
        """
        state = self._sqs[qid]
        if state.head != self._sq_tails[qid]:
            state.head = self._sq_tails[qid]
            self.queue_resyncs += 1

    def _service_queue(self, qid: int) -> int:
        """Service *qid*'s slot in the sweep: one command, or — when a
        doorbell advanced the tail by several entries and burst mode is
        on — every command whose SQE landed in one burst window.
        Returns the number of commands serviced."""
        window = self._burst_fetch(qid)
        if window is None:
            self._fetch_and_execute(qid)
            return 1
        state = self._sqs[qid]
        serviced = 0
        while (window.remaining > 0 and window.next_index == state.head
               and self._pending_on(qid) > 0):
            self._fetch_and_execute(qid, window=window)
            serviced += 1
        return serviced

    def _burst_fetch(self, qid: int) -> Optional[SqeWindow]:
        """Fetch min(pending, burst_limit) contiguous SQEs in ONE large
        DMA read (one MRd + its CplD batch instead of one pair per SQE).

        The window is clamped to the *published* tail — a torn or stale
        shadow value was already rejected by the doorbell/sync
        validation, so the burst can never read past what the host
        actually doorbell'd — and never wraps the ring end, keeping the
        transfer a single contiguous MRd.  Queue-local mode only: tagged
        chunks interleave across queues per-entry by design.
        """
        if (self.config.burst_limit <= 1 or qid == ADMIN_QID
                or self.mode != MODE_QUEUE_LOCAL):
            return None
        state = self._sqs[qid]
        count = min(self._pending_on(qid), self.config.burst_limit,
                    state.depth - state.head)
        if count <= 1:
            return None
        with self.clock.span("ctrl.sq_fetch"):
            self.clock.advance(self.timing.doorbell_poll_ns)
            raw = self.host_memory.read(state.slot_addr(state.head),
                                        count * SQE_SIZE)
            self.link.record_only(
                CAT_CMD_FETCH,
                tlpmod.device_dma_read(count * SQE_SIZE, self.link.config))
            self.clock.advance(self.timing.cmd_fetch_logic_ns)
        self.burst_fetches += 1
        return SqeWindow(
            start=state.head, depth=state.depth,
            entries=[raw[i * SQE_SIZE:(i + 1) * SQE_SIZE]
                     for i in range(count)])

    def _fetch_and_execute(self, qid: int,
                           window: Optional[SqeWindow] = None) -> None:
        from repro.faults.plan import CORRUPT_INLINE_LENGTH

        state = self._sqs[qid]
        with self.clock.span("ctrl.sq_fetch"):
            raw = window.take(state.head) if window is not None else None
            if raw is not None:
                # Burst-prefetched: already on-die, decode cost only.
                state.advance()
                self.clock.advance(self.timing.burst_sqe_logic_ns)
            else:
                self.clock.advance(self.timing.doorbell_poll_ns)
                raw = self._fetch_sqe(state)
                self.link.record_only(
                    CAT_CMD_FETCH,
                    tlpmod.device_dma_read(SQE_SIZE, self.link.config))
                self.clock.advance(self.timing.cmd_fetch_logic_ns)
            cmd = NvmeCommand.unpack(raw)

            if cmd.inline_length and self.faults.fire(CORRUPT_INLINE_LENGTH):
                # The reserved field arrived bit-flipped: the decode below
                # must detect it and fail the command, never mis-fetch.
                cmd.cdw2 = self.faults.corrupt_length(cmd.cdw2)

            # --- ByteExpress detection (paper §3.3.1) -------------------
            try:
                info = inspect_command(cmd)
            except InlineEncodingError:
                self.fetch_errors += 1
                self._resync_sq(qid)
                self._complete(qid, cmd, CommandResult(
                    StatusCode.INVALID_FIELD, retryable=True))
                return

            if info.is_inline and not self.byteexpress_enabled:
                # Defensive firmware: refuse rather than misparse chunks.
                self.fetch_errors += 1
                state.advance(min(info.chunks, self._pending_on(qid)))
                self._complete(qid, cmd, CommandResult(StatusCode.INVALID_FIELD))
                return

            if info.is_inline and self.mode == MODE_TAGGED:
                self._begin_tagged(qid, cmd, info.payload_len)
                return

            ctx = CommandContext(cmd=cmd, qid=qid)
            if info.is_inline:
                try:
                    ctx.data = fetch_inline_payload(
                        state, info, self._sq_tails[qid],
                        self.host_memory, self.link, self.clock, self.timing,
                        injector=self.faults, window=window)
                    ctx.transport = "inline"
                    self.inline_payloads += 1
                except ChunkCorruptionError:
                    self.fetch_errors += 1
                    self._resync_sq(qid)
                    self._complete(qid, cmd, CommandResult(
                        StatusCode.DATA_TRANSFER_ERROR, retryable=True))
                    return
                except InlineFetchError:
                    self.fetch_errors += 1
                    self._resync_sq(qid)
                    self._complete(qid, cmd, CommandResult(
                        StatusCode.INVALID_FIELD, retryable=True))
                    return

        self._transfer_and_dispatch(qid, ctx)

    # ------------------------------------------------------------------
    # tagged (out-of-order) mode — paper §3.3.2 future work
    # ------------------------------------------------------------------
    def _begin_tagged(self, qid: int, cmd: NvmeCommand,
                      payload_len: int) -> None:
        payload_id = cmd.cdw3
        chunks = tagged_chunk_count(payload_len)
        try:
            self._reassembly.expect(payload_id, payload_len)
        except ReassemblyError:
            self.fetch_errors += 1
            self._complete(qid, cmd, CommandResult(StatusCode.INVALID_FIELD))
            return
        self._pending_chunks[qid] = self._pending_chunks.get(qid, 0) + chunks
        self._deferred.append(_DeferredCommand(cmd, qid, payload_id))

    def _fetch_tagged_chunk(self, qid: int) -> None:
        state = self._sqs[qid]
        if self._pending_on(qid) == 0:
            return
        with self.clock.span("ctrl.sq_fetch"):
            raw = self._fetch_sqe(state)
            self.link.record_only(
                CAT_INLINE_CHUNK,
                tlpmod.device_dma_read(SQE_SIZE, self.link.config))
            self.clock.advance(self.timing.chunk_fetch_ns)
        self._pending_chunks[qid] -= 1
        try:
            payload = self._reassembly.accept(raw)
        except ReassemblyError:
            self.fetch_errors += 1
            return
        if payload is None:
            return
        payload_id, _, _, _ = parse_tagged(raw)
        for i, deferred in enumerate(self._deferred):
            if deferred.payload_id == payload_id:
                self._deferred.pop(i)
                ctx = CommandContext(cmd=deferred.cmd, qid=deferred.qid,
                                     data=payload, transport="inline")
                self.inline_payloads += 1
                self._transfer_and_dispatch(deferred.qid, ctx)
                return
        self.fetch_errors += 1  # pragma: no cover - chunk without command

    # ------------------------------------------------------------------
    # data movement (PRP / SGL)
    # ------------------------------------------------------------------
    def _read_list_page(self, addr: int) -> bytes:
        """DMA a PRP-list page, accounted as PRP-list traffic."""
        data = self.host_memory.read(addr, PAGE_SIZE)
        self.link.record_only(
            CAT_PRP_LIST, tlpmod.device_dma_read(PAGE_SIZE, self.link.config))
        self.clock.advance(self.timing.chunk_fetch_ns)
        return data

    def _pull_prp_data(self, cmd: NvmeCommand, nbytes: int) -> bytes:
        """Host→device data transfer over PRP (LBA-granular on the wire)."""
        with self.clock.span("ctrl.data_transfer"):
            self.clock.advance(self.timing.prp_dma_setup_ns)
            segments = walk_prps(cmd.prp1, cmd.prp2, nbytes,
                                 self._read_list_page,
                                 fetch_granularity=self.config.lba_bytes)
            payload = bytearray()
            wire_bytes = 0
            fetched = 0
            for seg in segments:
                payload += self.host_memory.read(seg.addr, seg.nbytes)
                batch = tlpmod.device_dma_read(seg.fetch_bytes,
                                               self.link.config)
                self.link.record_only(CAT_DATA, batch)
                wire_bytes += batch.total_bytes
                fetched += seg.fetch_bytes
            self.clock.advance(self.link.serialisation_ns(wire_bytes)
                               + self.timing.host_mem_read_ns
                               + self.timing.link_propagation_ns * 2)
            self.clock.advance(self.timing.dram_copy_per_kb_ns
                               * fetched / 1024.0)
        return bytes(payload)

    def _pull_sgl_data(self, cmd: NvmeCommand, nbytes: int) -> bytes:
        """Host→device transfer over SGL (byte-granular on the wire)."""
        with self.clock.span("ctrl.data_transfer"):
            inline = SglDescriptor.unpack(
                cmd.prp1.to_bytes(8, "little") + cmd.prp2.to_bytes(8, "little"))

            def read_segment(addr: int, length: int) -> bytes:
                data = self.host_memory.read(addr, length)
                self.link.record_only(
                    CAT_PRP_LIST,
                    tlpmod.device_dma_read(length, self.link.config))
                self.clock.advance(self.timing.chunk_fetch_ns)
                return data

            blocks = walk_sgl(inline, read_segment)
            self.clock.advance(self.timing.sgl_parse_ns * len(blocks))
            payload = bytearray()
            wire_bytes = 0
            for desc in blocks:
                if desc.sgl_type == SglType.BIT_BUCKET:
                    continue
                payload += self.host_memory.read(desc.addr, desc.length)
                batch = tlpmod.device_dma_read(desc.length, self.link.config)
                self.link.record_only(CAT_DATA, batch)
                wire_bytes += batch.total_bytes
            self.clock.advance(self.link.serialisation_ns(wire_bytes)
                               + self.timing.host_mem_read_ns
                               + self.timing.link_propagation_ns * 2)
            self.clock.advance(self.timing.dram_copy_per_kb_ns
                               * len(payload) / 1024.0)
        if len(payload) != nbytes:
            raise ValueError("SGL descriptors do not cover the transfer")
        return bytes(payload)

    def _push_read_data(self, cmd: NvmeCommand, data: bytes) -> None:
        """Device→host data return for read-style commands.

        With an SGL data pointer, bit-bucket descriptors discard their
        share of the data instead of transferring it (paper §5: "enabling
        completion of small-data read requests without requiring data
        return") — the read-side counterpart of write-path granularity.
        """
        if not data:
            return
        with self.clock.span("ctrl.data_transfer"):
            if cmd.psdt != Psdt.PRP:
                self._push_read_sgl(cmd, data)
                return
            self.host_memory.write(cmd.prp1, data)
            batch = tlpmod.device_dma_write(len(data), self.link.config)
            self.link.record_only(CAT_DATA, batch)
            self.clock.advance(self.timing.prp_dma_setup_ns
                               + self.link.serialisation_ns(batch.total_bytes)
                               + self.timing.link_propagation_ns)

    def _push_read_sgl(self, cmd: NvmeCommand, data: bytes) -> None:
        """SGL read return: deliver into data blocks, discard bit buckets."""
        inline = SglDescriptor.unpack(
            cmd.prp1.to_bytes(8, "little") + cmd.prp2.to_bytes(8, "little"))

        def read_segment(addr: int, length: int) -> bytes:
            raw = self.host_memory.read(addr, length)
            self.link.record_only(
                CAT_PRP_LIST,
                tlpmod.device_dma_read(length, self.link.config))
            self.clock.advance(self.timing.chunk_fetch_ns)
            return raw

        blocks = walk_sgl(inline, read_segment)
        self.clock.advance(self.timing.sgl_parse_ns * len(blocks))
        offset = 0
        delivered_wire = 0
        for desc in blocks:
            if offset >= len(data):
                break
            take = min(desc.length, len(data) - offset)
            if desc.sgl_type == SglType.BIT_BUCKET:
                offset += take  # discarded: no TLPs, no host write
                continue
            self.host_memory.write(desc.addr, data[offset:offset + take])
            batch = tlpmod.device_dma_write(take, self.link.config)
            self.link.record_only(CAT_DATA, batch)
            delivered_wire += batch.total_bytes
            offset += take
        self.clock.advance(self.timing.prp_dma_setup_ns
                           + self.link.serialisation_ns(delivered_wire)
                           + self.timing.link_propagation_ns)

    # ------------------------------------------------------------------
    # dispatch + completion
    # ------------------------------------------------------------------
    def _transfer_and_dispatch(self, qid: int, ctx: CommandContext) -> None:
        cmd = ctx.cmd
        if qid == ADMIN_QID:
            self._dispatch_admin(qid, ctx)
            return
        # Writes with a data pointer but no inline payload use PRP/SGL.
        # Convention (matches the NVM command set): CDW12 carries the
        # host→device data length in bytes for our vendor/passthrough
        # commands; zero means no host→device data phase.
        xfer_len = cmd.cdw12 if self._data_phase.get(cmd.opcode, True) else 0
        if ctx.data is None and xfer_len:
            try:
                if cmd.psdt == Psdt.PRP:
                    ctx.data = self._pull_prp_data(cmd, xfer_len)
                    ctx.transport = "prp"
                else:
                    ctx.data = self._pull_sgl_data(cmd, xfer_len)
                    ctx.transport = "sgl"
            except (ValueError, MemoryError):
                self.fetch_errors += 1
                self._complete(qid, cmd,
                               CommandResult(StatusCode.DATA_TRANSFER_ERROR))
                return

        handler = self._handlers.get(cmd.opcode)
        if handler is None:
            self._complete(qid, cmd, CommandResult(StatusCode.INVALID_OPCODE))
            return
        result = handler(ctx)
        if result.read_data is not None and result.status == StatusCode.SUCCESS:
            self._push_read_data(cmd, result.read_data)
        self._complete(qid, cmd, result)

    def dispatch_local(self, ctx: CommandContext) -> CommandResult:
        """Invoke an opcode handler on an already-materialised payload.

        Used by device-side layers that assemble payloads outside the
        normal transfer path (BandSlim fragment reassembly, the MMIO byte
        interface) and then hand off to the same firmware handlers.
        """
        handler = self._handlers.get(ctx.cmd.opcode)
        if handler is None:
            return CommandResult(StatusCode.INVALID_OPCODE)
        return handler(ctx)

    def _complete(self, qid: int, cmd: NvmeCommand,
                  result: CommandResult) -> None:
        from repro.faults.plan import DELAY_CQE, DROP_CQE

        if result.suppress_cqe:
            self.commands_processed += 1
            return
        with self.clock.span("ctrl.completion"):
            state = self._sqs[qid]
            cq = self._cqs[self._sq_cq[qid]]
            dnr = result.status != StatusCode.SUCCESS and not result.retryable
            cqe = NvmeCompletion(result=result.result, sq_head=state.head,
                                 sq_id=qid, cid=cmd.cid,
                                 status=result.status, dnr=dnr)
            # CQE faults target the I/O path: a lost *admin* completion
            # has no in-band recovery (real drivers escalate to a
            # controller reset), so bring-up is exempt.
            if qid != 0 and self.faults.fire(DELAY_CQE):
                self.clock.advance(self.faults.delay_cqe_ns)
            if qid != 0 and self.faults.fire(DROP_CQE):
                # The CQE write (or its MSI-X) is lost: the command ran,
                # but the host learns nothing and must time out + retry.
                self.dropped_cqes += 1
                self.clock.advance(self.timing.completion_post_ns)
                self.commands_processed += 1
                return
            cq.post(cqe, self.host_memory)
            if self.config.cq_coalesce > 1 and qid != ADMIN_QID:
                # Coalesced posting: the CQE text is staged (functional
                # visibility keeps the phase-bit protocol intact); the
                # DMA write and MSI-X are batched — one of each per
                # ``cq_coalesce`` completions, or at quiescence.
                self._coalesced[cq.qid] = self._coalesced.get(cq.qid, 0) + 1
                self.clock.advance(self.timing.cqe_coalesce_ns)
                if self._coalesced[cq.qid] >= self.config.cq_coalesce:
                    self._flush_cq(cq.qid)
            else:
                self.link.record_only(
                    CAT_CQE,
                    tlpmod.device_dma_write(CQE_SIZE, self.link.config))
                self.link.record_only(CAT_MSIX,
                                      tlpmod.msix_interrupt(self.link.config))
                self.clock.advance(self.timing.completion_post_ns)
        self.commands_processed += 1

    def _flush_cq(self, cq_qid: int) -> None:
        """Post one buffered CQE batch: one DMA write, one MSI-X."""
        count = self._coalesced.pop(cq_qid, 0)
        if not count:
            return
        with self.clock.span("ctrl.completion"):
            self.link.record_only(
                CAT_CQE,
                tlpmod.device_dma_write(count * CQE_SIZE, self.link.config))
            self.link.record_only(CAT_MSIX,
                                  tlpmod.msix_interrupt(self.link.config))
            self.clock.advance(self.timing.completion_post_ns)
        self.cqe_flushes += 1

    def flush_completions(self) -> None:
        """Flush every CQ's buffered completion batch (idle transition,
        or any point the host needs the accounting settled)."""
        for cq_qid in list(self._coalesced):
            self._flush_cq(cq_qid)

    # ------------------------------------------------------------------
    # admin command set
    # ------------------------------------------------------------------
    def _dispatch_admin(self, qid: int, ctx: CommandContext) -> None:
        cmd = ctx.cmd
        dispatch = {
            AdminOpcode.IDENTIFY: self._admin_identify,
            AdminOpcode.CREATE_CQ: self._admin_create_cq,
            AdminOpcode.CREATE_SQ: self._admin_create_sq,
            AdminOpcode.DELETE_SQ: self._admin_delete_sq,
            AdminOpcode.DELETE_CQ: self._admin_delete_cq,
            AdminOpcode.DBBUF_CONFIG: self._admin_dbbuf_config,
        }
        handler = dispatch.get(cmd.opcode)
        if handler is None:
            self._complete(qid, cmd, CommandResult(StatusCode.INVALID_OPCODE))
            return
        result = handler(cmd)
        if result.read_data is not None and result.status == StatusCode.SUCCESS:
            self._push_read_data(cmd, result.read_data)
        self.admin_commands_processed += 1
        self._complete(qid, cmd, result)

    def _admin_identify(self, cmd: NvmeCommand) -> CommandResult:
        cns = cmd.cdw10 & 0xFF
        if cns != 1:  # only Identify Controller is modelled
            return CommandResult(StatusCode.INVALID_FIELD)
        return CommandResult(read_data=self.identify_data.pack())

    def _admin_create_cq(self, cmd: NvmeCommand) -> CommandResult:
        qid = cmd.cdw10 & 0xFFFF
        depth = ((cmd.cdw10 >> 16) & 0xFFFF) + 1
        if (qid == ADMIN_QID or not cmd.prp1
                or qid > self.identify_data.num_io_queues):
            return CommandResult(StatusCode.INVALID_FIELD)
        try:
            self.create_cq(qid, cmd.prp1, depth)
        except ValueError:
            return CommandResult(StatusCode.INVALID_FIELD)
        return CommandResult()

    def _admin_create_sq(self, cmd: NvmeCommand) -> CommandResult:
        qid = cmd.cdw10 & 0xFFFF
        depth = ((cmd.cdw10 >> 16) & 0xFFFF) + 1
        cq_qid = (cmd.cdw11 >> 16) & 0xFFFF
        if qid == ADMIN_QID or not cmd.prp1:
            return CommandResult(StatusCode.INVALID_FIELD)
        try:
            self.create_sq(qid, cmd.prp1, depth, cq_qid=cq_qid)
        except ValueError:
            return CommandResult(StatusCode.INVALID_FIELD)
        return CommandResult()

    def _admin_delete_sq(self, cmd: NvmeCommand) -> CommandResult:
        try:
            self.delete_sq(cmd.cdw10 & 0xFFFF)
        except ValueError:
            return CommandResult(StatusCode.INVALID_FIELD)
        return CommandResult()

    def _admin_delete_cq(self, cmd: NvmeCommand) -> CommandResult:
        try:
            self.delete_cq(cmd.cdw10 & 0xFFFF)
        except ValueError:
            return CommandResult(StatusCode.INVALID_FIELD)
        return CommandResult()

    def _admin_dbbuf_config(self, cmd: NvmeCommand) -> CommandResult:
        """Doorbell Buffer Config: attach the shadow + eventidx pages.

        From here on the controller latches I/O SQ tails and CQ heads
        from the shadow page (one DMA read per wake-up) and publishes
        eventidx/park records so the host knows when a BAR doorbell is
        still required.  The admin queue itself always stays on MMIO
        doorbells — DBBUF must remain reachable on a device whose
        shadow state is broken.
        """
        if not cmd.prp1 or not cmd.prp2 or cmd.prp1 == cmd.prp2:
            return CommandResult(StatusCode.INVALID_FIELD)
        self._shadow = ShadowDoorbells.attach(self.host_memory,
                                              cmd.prp1, cmd.prp2)
        self._shadow_stale = False
        self._busy_since_park = False
        return CommandResult()
