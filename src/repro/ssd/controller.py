"""NVMe controller: a thin orchestrator over decomposed firmware units.

Mirrors the Cosmos+ firmware structure the paper modified, but — since
the ISSUE 5 refactor — as an orchestrator rather than a monolith.  The
controller owns all device state (register file, queue maps, stats,
shadow/reassembly/coalescing state) and the public protocol surface;
the work is done by its units:

* :class:`~repro.ssd.fetch.FetchUnit` (``self.fetch``) — shadow-doorbell
  poll/sync, single + burst SQE DMA fetch, the ByteExpress inline
  detection hook, tagged-chunk reassembly feeding;
* the **datapath decoders** (:mod:`repro.datapath.decoders`) — PRP/SGL
  payload pull and read-data push, selected per command by PSDT;
* :class:`~repro.ssd.admin.AdminEngine` (``self.admin``) — Identify,
  queue create/delete, DBBUF shadow-doorbell configuration;
* :class:`~repro.ssd.completion_unit.CompletionUnit`
  (``self.completion``) — CQE posting, coalescing, completion faults.

Everything runs against *device-side* queue state only; host queue
objects are never touched, exactly as on real hardware where host and
device share nothing but memory and registers.  ByteExpress hooks in
where the paper's <20-line patch does — the command-fetch routine
(queue-local mode), plus the §3.3.2 tagged mode (out-of-order chunk
reassembly across queues).

Timing: device-side phase costs come from the calibrated
:class:`~repro.sim.config.TimingModel`; the PRP/SGL data path additionally
pays wire serialisation, which is what produces the 4 KB staircase of
Figure 1(b).

The shared firmware datatypes (:class:`CommandContext`,
:class:`CommandResult`, :class:`DeviceCqState`, ...) live in
:mod:`repro.ssd.context` and are re-exported here for compatibility.
"""

from __future__ import annotations

from collections import deque
from dataclasses import replace
from typing import TYPE_CHECKING, Deque, Dict, List, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.virt.qos import QosArbiter

from repro.core.controller_ext import DeviceSqState
from repro.core.reassembly import ReassemblyBuffer
from repro.datapath.decoders import decoder_for_psdt
from repro.host.memory import HostMemory
from repro.host.shadow import ShadowDoorbells
from repro.nvme.command import NvmeCommand
from repro.nvme.constants import StatusCode
from repro.nvme.identify import IdentifyController
from repro.nvme.queues import CompletionQueue, CqOverrunError, SubmissionQueue
from repro.nvme.registers import (
    CC_ENABLE,
    CSTS_READY,
    REG_ACQ_LO,
    REG_AQA,
    REG_ASQ_LO,
    REG_CAP_LO,
    REG_CAP_HI,
    REG_CC,
    REG_CSTS,
    REG_VS,
    VERSION_1_4,
    cap_value,
    split_aqa,
)
from repro.pcie.link import PCIeLink
from repro.pcie.mmio import BarSpace, cq_doorbell_offset, sq_doorbell_offset
from repro.sim.clock import SimClock
from repro.sim.config import SimConfig
from repro.ssd.admin import AdminEngine
from repro.ssd.completion_unit import CompletionUnit
from repro.ssd.context import (
    ADMIN_QID,
    MODE_QUEUE_LOCAL,
    MODE_TAGGED,
    CommandContext,
    CommandResult,
    DeferredCommand,
    DeviceCqState,
    Handler,
)
from repro.ssd.fetch import FetchUnit

__all__ = [
    "NvmeController",
    "CommandContext",
    "CommandResult",
    "DeviceCqState",
    "Handler",
    "CqOverrunError",
    "MODE_QUEUE_LOCAL",
    "MODE_TAGGED",
    "ADMIN_QID",
    "SERVICE_LOG_CAPACITY",
]

#: Default bounded capacity of the service-order trace (ring buffer).
SERVICE_LOG_CAPACITY = 4096

#: Backwards-compatible private alias (pre-decomposition name).
_DeferredCommand = DeferredCommand


class NvmeController:
    """The device-side protocol engine."""

    def __init__(self, config: SimConfig, clock: SimClock, link: PCIeLink,
                 host_memory: HostMemory, bar: Optional[BarSpace] = None,
                 mode: str = MODE_QUEUE_LOCAL,
                 identify: Optional[IdentifyController] = None,
                 injector=None) -> None:
        if mode not in (MODE_QUEUE_LOCAL, MODE_TAGGED):
            raise ValueError(f"unknown fetch mode {mode!r}")
        if injector is None:
            from repro.faults.plan import NULL_INJECTOR
            injector = NULL_INJECTOR
        self.faults = injector
        self.config = config
        self.timing = config.timing
        self.clock = clock
        self.link = link
        self.host_memory = host_memory
        self.bar = bar if bar is not None else BarSpace()
        self.mode = mode
        # The device advertises its own capability (Cosmos+-class: 16 I/O
        # queues) — independent of how many the host wants to create.
        self.identify_data = identify or IdentifyController()
        #: Firmware support switch: stock firmware would misparse inline
        #: chunks as commands, so a safety-conscious build rejects them.
        self.byteexpress_enabled = True
        self._sqs: Dict[int, DeviceSqState] = {}
        self._sq_tails: Dict[int, int] = {}
        self._cqs: Dict[int, DeviceCqState] = {}
        self._sq_cq: Dict[int, int] = {}
        self._handlers: Dict[int, Handler] = {}
        self._data_phase: Dict[int, bool] = {}
        self._rr_order: List[int] = []
        self._rr_next = 0
        self.enabled = False
        #: Namespace bindings (``repro.virt``): qid → owning nsid.  Empty
        #: means enforcement is disarmed — the single-tenant default —
        #: and costs one falsy-dict check per dispatch.
        self._ns_of_qid: Dict[int, int] = {}
        #: QoS arbiter (``repro.virt.qos.QosArbiter``); ``None`` keeps
        #: the fetch unit on its stock service path.
        self.qos: Optional["QosArbiter"] = None
        # tagged-mode state
        self._reassembly = ReassemblyBuffer(
            max_in_flight=config.reassembly_in_flight)
        self._pending_chunks: Dict[int, int] = {}
        self._deferred: List[DeferredCommand] = []
        #: Optional fetch-order trace: every serviced qid is appended.
        #: Off by default; :meth:`enable_service_log` arms it as a
        #: *bounded* ring buffer so long traced engine runs cannot grow
        #: memory without limit.
        self.service_log: Optional[Deque[int]] = None
        # shadow-doorbell state (armed by the DBBUF_CONFIG admin command)
        self._shadow: Optional[ShadowDoorbells] = None
        self._shadow_stale = False
        self._busy_since_park = False
        # CQE coalescing: buffered-but-unposted completion counts per CQ
        self._coalesced: Dict[int, int] = {}
        # stats
        self.commands_processed = 0
        self.admin_commands_processed = 0
        self.inline_payloads = 0
        self.fetch_errors = 0
        self.queue_resyncs = 0
        self.dropped_cqes = 0
        self.shadow_syncs = 0
        self.shadow_rejects = 0
        self.burst_fetches = 0
        self.cqe_flushes = 0
        self.ns_rejections = 0
        # firmware units (the controller is the orchestrator; all state
        # above stays here, the units operate on it through their backref)
        self.admin = AdminEngine(self)
        self.fetch = FetchUnit(self)
        self.completion = CompletionUnit(self)
        self._publish_capabilities()

    def enable_service_log(
            self, capacity: int = SERVICE_LOG_CAPACITY) -> Deque[int]:
        """Arm the fetch-order trace, keeping only the last *capacity*
        serviced qids (a ring buffer — tracing a long run is safe)."""
        if capacity < 1:
            raise ValueError("service log capacity must be at least 1")
        self.service_log = deque(maxlen=capacity)
        return self.service_log

    # ------------------------------------------------------------------
    # register file
    # ------------------------------------------------------------------
    def _publish_capabilities(self) -> None:
        cap = cap_value(max_queue_entries=self.config.sq_depth)
        self.bar.write32(REG_CAP_LO, cap & 0xFFFFFFFF)
        self.bar.write32(REG_CAP_HI, cap >> 32)
        self.bar.write32(REG_VS, VERSION_1_4)
        self.bar.on_write(REG_CC, self._on_cc_write)

    def _on_cc_write(self, value: int) -> None:
        if value & CC_ENABLE and not self.enabled:
            self._enable()
        elif not value & CC_ENABLE and self.enabled:
            self._disable()

    def _enable(self) -> None:
        """CC.EN 0→1: latch the admin queue registers, come ready."""
        asq = self.bar.read32(REG_ASQ_LO)
        acq = self.bar.read32(REG_ACQ_LO)
        asq_depth, acq_depth = split_aqa(self.bar.read32(REG_AQA))
        if not asq or not acq:
            return  # driver forgot the bases; stay not-ready
        self._install_queue_pair(ADMIN_QID, asq, asq_depth, acq, acq_depth)
        self.enabled = True
        self.bar.write32(REG_CSTS, CSTS_READY)

    def _disable(self) -> None:
        """CC.EN 1→0: controller reset — drop all queue state."""
        self._sqs.clear()
        self._sq_tails.clear()
        self._cqs.clear()
        self._sq_cq.clear()
        self._rr_order.clear()
        self._rr_next = 0
        self._pending_chunks.clear()
        self._deferred.clear()
        self._shadow = None
        self._shadow_stale = False
        self._busy_since_park = False
        self._coalesced.clear()
        self._ns_of_qid.clear()
        self.enabled = False
        self.bar.write32(REG_CSTS, 0)

    # ------------------------------------------------------------------
    # persistence (repro.durability)
    # ------------------------------------------------------------------
    # Everything the controller holds about in-flight protocol state —
    # queue maps, private head pointers, reassembly slots, coalescing
    # counters — lives in controller SRAM/DRAM: DEVICE_VOLATILE.  The
    # handler table, identify data and register *capabilities* are
    # firmware identity and survive (they are republished on reset).

    def snapshot(self) -> object:
        shadow = (None if self._shadow is None
                  else (self._shadow.shadow_addr, self._shadow.eventidx_addr))
        return {
            "enabled": self.enabled,
            "sqs": {q: replace(s) for q, s in self._sqs.items()},
            "sq_tails": dict(self._sq_tails),
            "cqs": {q: replace(c) for q, c in self._cqs.items()},
            "sq_cq": dict(self._sq_cq),
            "rr_order": list(self._rr_order),
            "rr_next": self._rr_next,
            "ns_of_qid": dict(self._ns_of_qid),
            "pending_chunks": dict(self._pending_chunks),
            "deferred": list(self._deferred),
            "shadow": shadow,
            "shadow_stale": self._shadow_stale,
            "busy_since_park": self._busy_since_park,
            "coalesced": dict(self._coalesced),
        }

    def restore(self, state: object) -> None:
        assert isinstance(state, dict)
        self.enabled = state["enabled"]
        self._sqs = {q: replace(s) for q, s in state["sqs"].items()}
        self._sq_tails = dict(state["sq_tails"])
        self._cqs = {q: replace(c) for q, c in state["cqs"].items()}
        self._sq_cq = dict(state["sq_cq"])
        self._rr_order = list(state["rr_order"])
        self._rr_next = state["rr_next"]
        self._ns_of_qid = dict(state["ns_of_qid"])
        self._pending_chunks = dict(state["pending_chunks"])
        self._deferred = list(state["deferred"])
        shadow = state["shadow"]
        self._shadow = (None if shadow is None else ShadowDoorbells.attach(
            self.host_memory, shadow[0], shadow[1]))
        self._shadow_stale = state["shadow_stale"]
        self._busy_since_park = state["busy_since_park"]
        self._coalesced = dict(state["coalesced"])
        self.bar.write32(REG_CSTS, CSTS_READY if self.enabled else 0)

    def scrub(self) -> None:
        """Power cut: drop every volatile protocol structure.

        Equivalent to a controller reset (:meth:`_disable`) plus wiping
        the reassembly buffer, which ``_disable`` deliberately keeps
        (a live reset lets in-flight tagged chunks drain; a power cut
        does not).  Handlers, identify data and stats counters survive —
        the first two are firmware identity, the last are simulation
        bookkeeping the crash harness reads *after* the cut.
        """
        self._disable()
        self._reassembly = ReassemblyBuffer(
            max_in_flight=self.config.reassembly_in_flight)
        self._pending_chunks.clear()
        self._deferred.clear()

    # ------------------------------------------------------------------
    # queue management
    # ------------------------------------------------------------------
    def _install_queue_pair(self, qid: int, sq_base: int, sq_depth: int,
                            cq_base: int, cq_depth: int) -> None:
        self.create_cq(qid, cq_base, cq_depth)
        self.create_sq(qid, sq_base, sq_depth, cq_qid=qid)

    def create_cq(self, qid: int, base: int, depth: int) -> None:
        if qid in self._cqs:
            raise ValueError(f"CQ {qid} already exists")
        if depth < 2:
            raise ValueError("CQ depth must be at least 2")
        self._cqs[qid] = DeviceCqState(qid=qid, base_addr=base, depth=depth)
        self.bar.on_write(cq_doorbell_offset(qid),
                          lambda head, q=qid: self.note_cq_head(q, head))

    def create_sq(self, qid: int, base: int, depth: int, cq_qid: int) -> None:
        if qid in self._sqs:
            raise ValueError(f"SQ {qid} already exists")
        if cq_qid not in self._cqs:
            raise ValueError(f"SQ {qid} references missing CQ {cq_qid}")
        if depth < 2:
            raise ValueError("SQ depth must be at least 2")
        self._sqs[qid] = DeviceSqState(qid=qid, base_addr=base, depth=depth)
        self._sq_tails[qid] = 0
        self._sq_cq[qid] = cq_qid
        self._rr_order.append(qid)
        self.bar.on_write(sq_doorbell_offset(qid),
                          lambda tail, q=qid: self.note_sq_doorbell(q, tail))

    def delete_sq(self, qid: int) -> None:
        if qid not in self._sqs:
            raise ValueError(f"no SQ {qid}")
        del self._sqs[qid]
        del self._sq_tails[qid]
        del self._sq_cq[qid]
        self._rr_order.remove(qid)
        self._rr_next = 0
        self._pending_chunks.pop(qid, None)
        self._ns_of_qid.pop(qid, None)
        self.bar.clear_write_handler(sq_doorbell_offset(qid))

    def delete_cq(self, qid: int) -> None:
        if qid not in self._cqs:
            raise ValueError(f"no CQ {qid}")
        if qid in self._sq_cq.values():
            raise ValueError(f"CQ {qid} still referenced by an SQ")
        del self._cqs[qid]
        self.bar.clear_write_handler(cq_doorbell_offset(qid))

    def register_queue_pair(self, sq: SubmissionQueue,
                            cq: CompletionQueue) -> None:
        """Convenience wiring from host queue objects (tests, direct use)."""
        if sq.qid in self._sqs:
            raise ValueError(f"queue pair {sq.qid} already registered")
        self._install_queue_pair(sq.qid, sq.base_addr, sq.depth,
                                 cq.base_addr, cq.depth)

    # ------------------------------------------------------------------
    # namespace bindings (repro.virt)
    # ------------------------------------------------------------------
    def bind_namespace(self, qid: int, nsid: int) -> None:
        """Pin SQ *qid* to namespace *nsid*; arms enforcement.

        Once any binding exists, every I/O command is checked at dispatch:
        nsid 0 is always rejected, and a command on a bound queue whose
        nsid differs from the owner's is rejected — both with
        ``INVALID_NAMESPACE_OR_FORMAT`` (DNR set; retry cannot succeed).
        Unbound queues stay usable with any non-zero nsid, so a host's
        own bring-up queues keep working beside tenant queues.
        """
        if qid == ADMIN_QID:
            raise ValueError("cannot bind a namespace to the admin queue")
        if nsid <= 0:
            raise ValueError(f"nsid must be positive, got {nsid}")
        self._ns_of_qid[qid] = nsid

    def unbind_namespace(self, qid: int) -> None:
        """Drop SQ *qid*'s namespace binding (idempotent)."""
        self._ns_of_qid.pop(qid, None)

    def namespace_of(self, qid: int) -> Optional[int]:
        """The nsid bound to SQ *qid*, or ``None``."""
        return self._ns_of_qid.get(qid)

    def note_sq_doorbell(self, qid: int, tail: int) -> None:
        state = self._sqs.get(qid)
        if state is None or not 0 <= tail < state.depth:
            return  # spec: bad doorbells are ignored (may set CSTS later)
        self._sq_tails[qid] = tail

    def note_cq_head(self, qid: int, head: int) -> None:
        state = self._cqs.get(qid)
        if state is None or not 0 <= head < state.depth:
            return
        state.host_head = head

    # ------------------------------------------------------------------
    # handler registration
    # ------------------------------------------------------------------
    def register_handler(self, opcode: int, handler: Handler,
                         data_phase: bool = True) -> None:
        """Attach firmware for an I/O *opcode*.

        *data_phase* declares whether the opcode moves host→device data
        through the data pointer (PRP/SGL) when CDW12 is non-zero — in
        real NVMe the transfer direction is defined per opcode, and
        BandSlim fragment commands carry their payload in command fields,
        not through a data pointer.
        """
        self._handlers[opcode] = handler
        self._data_phase[opcode] = data_phase

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def _pending_on(self, qid: int) -> int:
        state = self._sqs[qid]
        return (self._sq_tails[qid] - state.head) % state.depth

    # ------------------------------------------------------------------
    # shadow doorbells (DBBUF): device-side poll / sync / park
    # ------------------------------------------------------------------
    def _shadow_span_bytes(self) -> int:
        """Delegate to the fetch unit (see ``FetchUnit.shadow_span_bytes``)."""
        return self.fetch.shadow_span_bytes()

    def _peek_shadow(self) -> bool:
        """Delegate to the fetch unit (see ``FetchUnit.peek_shadow``)."""
        return self.fetch.peek_shadow()

    def _sync_shadow(self) -> None:
        """Delegate to the fetch unit (see ``FetchUnit.sync_shadow``)."""
        self.fetch.sync_shadow()

    def quiesce(self) -> None:
        """The device-idle transition, called by the host-side drive
        loops once the firmware loop runs dry.

        Flushes any coalesced completions, then (under shadow doorbells)
        parks the device: the fetch unit publishes the per-queue eventidx
        values and the park record — the promise to keep polling the
        shadow page for another ``shadow_idle_ns`` — with one small DMA
        write.  A no-op unless the device did work since the last park:
        an idle host polling an idle device must not generate traffic.
        """
        self.flush_completions()
        self.fetch.park()

    def has_pending(self, ready_only: bool = False) -> bool:
        """Is there fetchable work?

        *ready_only* additionally skips QoS-throttled queues (pending
        work whose token buckets cannot afford a fetch right now).  The
        engine reactor drives with ``ready_only=True`` so one tenant's
        polls never sit out another tenant's token refill; full drains
        (``process_all``) keep the default and wait the throttle out.
        """
        if self._shadow is not None and not self._shadow_stale:
            self._peek_shadow()
        if self._shadow_stale:
            return True
        tails = self._sq_tails
        chunks = self._pending_chunks
        qos = self.qos
        for qid, state in self._sqs.items():
            if ((tails[qid] - state.head) % state.depth
                    or chunks.get(qid, 0)):
                if qos is not None:
                    if not qos.serviceable(qid):
                        continue  # parked (weight-0) queue: not drainable
                    if (ready_only and qos.governs(qid)
                            and not qos.ready(
                                qid, self.fetch.peek_cost(state))):
                        continue  # throttled: pending, but not right now
                return True
        return False

    def active_queue_count(self) -> int:
        """Queues with doorbell'd work the next sweep would service.

        The engine's completion reactor uses this to size the firmware's
        parallel service width (bounded by ``config.fetch_lanes``).
        """
        if self._shadow is not None and self._shadow_stale:
            self._sync_shadow()
        tails = self._sq_tails
        chunks = self._pending_chunks
        count = 0
        for qid, state in self._sqs.items():
            if ((tails[qid] - state.head) % state.depth
                    or chunks.get(qid, 0)):
                count += 1
        return count

    def supports(self, opcode: int) -> bool:
        """Is firmware registered for *opcode*?  (Feature probing for
        layered transports such as BandSlim fragment reassembly.)"""
        return opcode in self._handlers

    def abort_payload(self, payload_id: int) -> None:
        """Drop tagged-reassembly state for an abandoned payload.

        The engine's timeout path calls this before resubmitting a
        tagged command under a fresh payload id, so half-received chunk
        state cannot pin SRAM forever.  Idempotent.
        """
        self._reassembly.abort(payload_id)

    def process_all(self) -> int:
        """Run the firmware loop until every queue is drained."""
        done = 0
        while self.has_pending():
            done += self.poll_once()
        self.quiesce()
        return done

    def poll_once(self) -> int:
        """One round-robin sweep over the doorbells.

        Fairness: the sweep *resumes from the queue after the last one it
        serviced* rather than restarting from a fixed position.  A full
        sweep advances ``_rr_next`` by exactly its own length, so the old
        code always began at the same queue — under sustained multi-queue
        load the lowest-numbered SQ was serviced first every sweep and
        high-numbered SQs saw systematically worse fetch latency.
        """
        if self._shadow is not None:
            if not self._shadow_stale:
                self._peek_shadow()
            if self._shadow_stale:
                self._sync_shadow()
        done = 0
        # Snapshot: servicing the admin queue can CREATE/DELETE queues
        # mid-sweep (tenant provisioning), mutating ``_rr_order`` under
        # the iteration.  Deleted queues are skipped below; created ones
        # join the next sweep.
        order = list(self._rr_order)
        if not order:
            return 0
        start = self._rr_next
        nqueues = len(order)
        tagged = self.mode == MODE_TAGGED
        tails = self._sq_tails
        sqs = self._sqs
        log = self.service_log
        fetch = self.fetch
        for i in range(nqueues):
            idx = (start + i) % nqueues
            qid = order[idx]
            state = sqs.get(qid)
            if state is None:
                continue  # deleted by an admin command this sweep
            if tagged and self._pending_chunks.get(qid, 0):
                fetch.fetch_tagged_chunk(qid)
                serviced = 1
            else:
                if (tails[qid] - state.head) % state.depth == 0:
                    continue
                serviced = fetch.service_queue(qid)
            done += serviced
            self._rr_next = (idx + 1) % nqueues
            if log is not None:
                log.extend([qid] * serviced)
        if done:
            self._busy_since_park = True
        elif self.qos is not None and self.has_pending():
            # Every pending queue was throttled this sweep.  The firmware
            # polls the doorbells while token buckets refill — jump the
            # clock to the denials' next service instant (at least one
            # doorbell poll) so throttled drains stay live without
            # sweeping once per poll interval.  Charged only on an
            # all-denied sweep: while any queue makes real progress,
            # well-behaved neighbors pay nothing for a throttled
            # tenant's presence.
            self.clock.advance(max(self.timing.doorbell_poll_ns,
                                   self.qos.take_wait_ns()))
        return done

    #: Backwards-compatible alias (pre-engine name).
    _poll_once = poll_once

    # ------------------------------------------------------------------
    # command fetch — delegates into the fetch unit (``self.fetch``)
    # ------------------------------------------------------------------
    def _fetch_sqe(self, state: DeviceSqState) -> bytes:
        """Delegate to the fetch unit (see ``FetchUnit.fetch_sqe``)."""
        return self.fetch.fetch_sqe(state)

    def _resync_sq(self, qid: int) -> None:
        """Delegate to the fetch unit (see ``FetchUnit.resync_sq``)."""
        self.fetch.resync_sq(qid)

    def _service_queue(self, qid: int) -> int:
        """Delegate to the fetch unit (see ``FetchUnit.service_queue``)."""
        return self.fetch.service_queue(qid)

    def _fetch_and_execute(self, qid: int, window=None) -> None:
        """Delegate to the fetch unit (see ``FetchUnit.fetch_and_execute``)."""
        self.fetch.fetch_and_execute(qid, window=window)

    def _fetch_tagged_chunk(self, qid: int) -> None:
        """Delegate to the fetch unit (see ``FetchUnit.fetch_tagged_chunk``)."""
        self.fetch.fetch_tagged_chunk(qid)

    # ------------------------------------------------------------------
    # data movement — delegated to the datapath decoders
    # ------------------------------------------------------------------
    def _push_read_data(self, cmd: NvmeCommand, data: bytes) -> None:
        """Device→host data return for read-style commands.

        The PSDT field selects the datapath decoder; with an SGL data
        pointer, bit-bucket descriptors discard their share of the data
        instead of transferring it (paper §5: "enabling completion of
        small-data read requests without requiring data return") — the
        read-side counterpart of write-path granularity.
        """
        if not data:
            return
        with self.clock.span("ctrl.data_transfer"):
            decoder_for_psdt(cmd.psdt).push(self, cmd, data)

    # ------------------------------------------------------------------
    # dispatch + completion
    # ------------------------------------------------------------------
    def _transfer_and_dispatch(self, qid: int, ctx: CommandContext) -> None:
        cmd = ctx.cmd
        if qid == ADMIN_QID:
            self._dispatch_admin(qid, ctx)
            return
        ns_map = self._ns_of_qid
        if ns_map:
            # Namespace enforcement is armed (repro.virt): nsid 0 is
            # never valid on an I/O command, and a bound queue only
            # accepts its owner's nsid.
            owner = ns_map.get(qid)
            if cmd.nsid == 0 or (owner is not None and cmd.nsid != owner):
                self.ns_rejections += 1
                self._complete(qid, cmd, CommandResult(
                    StatusCode.INVALID_NAMESPACE_OR_FORMAT))
                return
        # Writes with a data pointer but no inline payload use PRP/SGL.
        # Convention (matches the NVM command set): CDW12 carries the
        # host→device data length in bytes for our vendor/passthrough
        # commands; zero means no host→device data phase.
        xfer_len = cmd.cdw12 if self._data_phase.get(cmd.opcode, True) else 0
        if ctx.data is None and xfer_len:
            decoder = decoder_for_psdt(cmd.psdt)
            try:
                ctx.data = decoder.pull(self, cmd, xfer_len)
                ctx.transport = decoder.transport
            except (ValueError, MemoryError):
                self.fetch_errors += 1
                self._complete(qid, cmd,
                               CommandResult(StatusCode.DATA_TRANSFER_ERROR))
                return

        handler = self._handlers.get(cmd.opcode)
        if handler is None:
            self._complete(qid, cmd, CommandResult(StatusCode.INVALID_OPCODE))
            return
        result = handler(ctx)
        if result.read_data is not None and result.status == StatusCode.SUCCESS:
            self._push_read_data(cmd, result.read_data)
        self._complete(qid, cmd, result)

    def dispatch_local(self, ctx: CommandContext) -> CommandResult:
        """Invoke an opcode handler on an already-materialised payload.

        Used by device-side layers that assemble payloads outside the
        normal transfer path (BandSlim fragment reassembly, the MMIO byte
        interface) and then hand off to the same firmware handlers.
        """
        handler = self._handlers.get(ctx.cmd.opcode)
        if handler is None:
            return CommandResult(StatusCode.INVALID_OPCODE)
        return handler(ctx)

    def _complete(self, qid: int, cmd: NvmeCommand,
                  result: CommandResult) -> None:
        """Delegate to the completion unit (see ``CompletionUnit.complete``).

        Stays a controller method on purpose: tests and instrumentation
        patch ``controller._complete``, and every unit routes completions
        through this name so such patches see the whole completion flow.
        """
        self.completion.complete(qid, cmd, result)

    def _flush_cq(self, cq_qid: int) -> None:
        """Delegate to the completion unit (see ``CompletionUnit.flush_cq``)."""
        self.completion.flush_cq(cq_qid)

    def flush_completions(self) -> None:
        """Flush every CQ's buffered completion batch (idle transition,
        or any point the host needs the accounting settled)."""
        self.completion.flush_all()

    # ------------------------------------------------------------------
    # admin command set — delegated to the admin engine (``self.admin``)
    # ------------------------------------------------------------------
    def _dispatch_admin(self, qid: int, ctx: CommandContext) -> None:
        """Delegate to the admin engine (see ``AdminEngine.dispatch``)."""
        self.admin.dispatch(qid, ctx)
