"""The controller's admin command set, decomposed out of the monolith.

:class:`AdminEngine` owns queue create/delete, Identify, and the DBBUF
(shadow doorbell) configuration — the bring-up half of the firmware.
It is a *unit* of the controller, not a peer: all queue state stays on
the controller (the orchestrator), and completions flow back through
``ctrl._complete`` so instrumentation and fault injection see one
completion path.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict

from repro.host.shadow import ShadowDoorbells
from repro.nvme.command import NvmeCommand
from repro.nvme.constants import AdminOpcode, StatusCode
from repro.ssd.context import ADMIN_QID, CommandContext, CommandResult

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.ssd.controller import NvmeController


class AdminEngine:
    """Admin-queue dispatch + handlers (Identify, queue mgmt, DBBUF)."""

    def __init__(self, ctrl: "NvmeController") -> None:
        self.ctrl = ctrl
        self._dispatch: Dict[int, Callable[[NvmeCommand], CommandResult]] = {
            AdminOpcode.IDENTIFY: self._identify,
            AdminOpcode.CREATE_CQ: self._create_cq,
            AdminOpcode.CREATE_SQ: self._create_sq,
            AdminOpcode.DELETE_SQ: self._delete_sq,
            AdminOpcode.DELETE_CQ: self._delete_cq,
            AdminOpcode.DBBUF_CONFIG: self._dbbuf_config,
        }

    def dispatch(self, qid: int, ctx: CommandContext) -> None:
        ctrl = self.ctrl
        cmd = ctx.cmd
        handler = self._dispatch.get(cmd.opcode)
        if handler is None:
            ctrl._complete(qid, cmd, CommandResult(StatusCode.INVALID_OPCODE))
            return
        result = handler(cmd)
        if result.read_data is not None and result.status == StatusCode.SUCCESS:
            ctrl._push_read_data(cmd, result.read_data)
        ctrl.admin_commands_processed += 1
        ctrl._complete(qid, cmd, result)

    def _identify(self, cmd: NvmeCommand) -> CommandResult:
        cns = cmd.cdw10 & 0xFF
        if cns != 1:  # only Identify Controller is modelled
            return CommandResult(StatusCode.INVALID_FIELD)
        return CommandResult(read_data=self.ctrl.identify_data.pack())

    def _create_cq(self, cmd: NvmeCommand) -> CommandResult:
        ctrl = self.ctrl
        qid = cmd.cdw10 & 0xFFFF
        depth = ((cmd.cdw10 >> 16) & 0xFFFF) + 1
        if (qid == ADMIN_QID or not cmd.prp1
                or qid > ctrl.identify_data.num_io_queues):
            return CommandResult(StatusCode.INVALID_FIELD)
        try:
            ctrl.create_cq(qid, cmd.prp1, depth)
        except ValueError:
            return CommandResult(StatusCode.INVALID_FIELD)
        return CommandResult()

    def _create_sq(self, cmd: NvmeCommand) -> CommandResult:
        ctrl = self.ctrl
        qid = cmd.cdw10 & 0xFFFF
        depth = ((cmd.cdw10 >> 16) & 0xFFFF) + 1
        cq_qid = (cmd.cdw11 >> 16) & 0xFFFF
        if qid == ADMIN_QID or not cmd.prp1:
            return CommandResult(StatusCode.INVALID_FIELD)
        try:
            ctrl.create_sq(qid, cmd.prp1, depth, cq_qid=cq_qid)
        except ValueError:
            return CommandResult(StatusCode.INVALID_FIELD)
        return CommandResult()

    def _delete_sq(self, cmd: NvmeCommand) -> CommandResult:
        try:
            self.ctrl.delete_sq(cmd.cdw10 & 0xFFFF)
        except ValueError:
            return CommandResult(StatusCode.INVALID_FIELD)
        return CommandResult()

    def _delete_cq(self, cmd: NvmeCommand) -> CommandResult:
        try:
            self.ctrl.delete_cq(cmd.cdw10 & 0xFFFF)
        except ValueError:
            return CommandResult(StatusCode.INVALID_FIELD)
        return CommandResult()

    def _dbbuf_config(self, cmd: NvmeCommand) -> CommandResult:
        """Doorbell Buffer Config: attach the shadow + eventidx pages.

        From here on the controller latches I/O SQ tails and CQ heads
        from the shadow page (one DMA read per wake-up) and publishes
        eventidx/park records so the host knows when a BAR doorbell is
        still required.  The admin queue itself always stays on MMIO
        doorbells — DBBUF must remain reachable on a device whose
        shadow state is broken.
        """
        ctrl = self.ctrl
        if not cmd.prp1 or not cmd.prp2 or cmd.prp1 == cmd.prp2:
            return CommandResult(StatusCode.INVALID_FIELD)
        ctrl._shadow = ShadowDoorbells.attach(ctrl.host_memory,
                                              cmd.prp1, cmd.prp2)
        ctrl._shadow_stale = False
        ctrl._busy_since_park = False
        return CommandResult()
