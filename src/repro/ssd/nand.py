"""NAND flash array model.

Models the Cosmos+ OpenSSD back-end: a grid of dies (channels × ways), each
executing page program / page read / block erase operations with realistic
latencies.  Dies operate independently, so a stream of programs issued to
different dies pipelines; the array tracks per-die busy-until times against
the shared simulated clock and exposes both blocking (latency-accurate) and
pipelined (throughput-accurate) issue modes.

The Figure 1(b)/5 experiments disable NAND entirely — the paper measures
pure transfer latency — while Figure 6 (KV-SSD) runs with NAND on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.sim.clock import SimClock
from repro.sim.config import TimingModel


@dataclass(frozen=True)
class PhysicalPage:
    """Physical page coordinates."""

    channel: int
    way: int
    block: int
    page: int


@dataclass
class NandGeometry:
    channels: int = 8
    ways: int = 8
    blocks_per_die: int = 64
    pages_per_block: int = 64
    page_bytes: int = 16384

    @property
    def dies(self) -> int:
        return self.channels * self.ways

    @property
    def pages_per_die(self) -> int:
        return self.blocks_per_die * self.pages_per_block

    @property
    def total_pages(self) -> int:
        return self.dies * self.pages_per_die

    def die_index(self, channel: int, way: int) -> int:
        if not (0 <= channel < self.channels and 0 <= way < self.ways):
            raise ValueError(f"die ({channel},{way}) out of range")
        return channel * self.ways + way


class NandError(Exception):
    """Media-level failure (program fault, read of erased page, ...)."""


class NandArray:
    """Functional + timed NAND array.

    Data is stored per physical page so reads return exactly what was
    programmed; the model enforces flash discipline (no overwrite without
    erase, in-order page programming within a block).
    """

    def __init__(self, clock: SimClock, timing: TimingModel,
                 geometry: Optional[NandGeometry] = None) -> None:
        self.clock = clock
        self.timing = timing
        self.geometry = geometry or NandGeometry(
            channels=timing.nand_channels, ways=timing.nand_ways,
            page_bytes=timing.nand_page_bytes)
        #: die index -> time the die becomes idle.
        self._busy_until: List[float] = [0.0] * self.geometry.dies
        #: (die, block) -> next programmable page index.
        self._write_points: Dict[Tuple[int, int], int] = {}
        #: (die, block, page) -> data.
        self._pages: Dict[Tuple[int, int, int], bytes] = {}
        #: Dies that fail their next program (failure injection).
        self._inject_fail: Dict[int, int] = {}
        self.programs = 0
        self.reads = 0
        self.erases = 0

    # ------------------------------------------------------------------
    # failure injection
    # ------------------------------------------------------------------
    def inject_program_failures(self, die: int, count: int = 1) -> None:
        """Make the next *count* programs on *die* fail."""
        self._inject_fail[die] = self._inject_fail.get(die, 0) + count

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    def _die(self, page: PhysicalPage) -> int:
        return self.geometry.die_index(page.channel, page.way)

    def _check_page(self, page: PhysicalPage) -> None:
        g = self.geometry
        if not (0 <= page.block < g.blocks_per_die
                and 0 <= page.page < g.pages_per_block):
            raise ValueError(f"page {page} out of range")

    def program(self, page: PhysicalPage, data: bytes,
                blocking: bool = False) -> float:
        """Program one page; returns the operation's completion time.

        In pipelined mode (default) the clock does not wait for the die;
        the die is simply busy until the completion time, which is how the
        value-log flusher overlaps NAND with transfers.  With
        ``blocking=True`` the clock advances to completion (synchronous
        flush paths).
        """
        self._check_page(page)
        if len(data) > self.geometry.page_bytes:
            raise NandError(
                f"data ({len(data)} B) exceeds page size "
                f"({self.geometry.page_bytes} B)")
        die = self._die(page)
        key = (die, page.block)
        expected = self._write_points.get(key, 0)
        if page.page != expected:
            raise NandError(
                f"out-of-order program: die {die} block {page.block} "
                f"expects page {expected}, got {page.page}")
        if self._inject_fail.get(die, 0) > 0:
            self._inject_fail[die] -= 1
            raise NandError(f"program failure injected on die {die}")

        start = max(self.clock.now, self._busy_until[die])
        end = start + self.timing.nand_page_program_ns
        self._busy_until[die] = end
        self._write_points[key] = expected + 1
        self._pages[(die, page.block, page.page)] = bytes(data)
        self.programs += 1
        if blocking:
            self.clock.advance_to(end)
        return end

    def read(self, page: PhysicalPage, blocking: bool = True) -> bytes:
        """Read one programmed page."""
        self._check_page(page)
        die = self._die(page)
        data = self._pages.get((die, page.block, page.page))
        if data is None:
            raise NandError(f"read of unwritten page {page}")
        start = max(self.clock.now, self._busy_until[die])
        end = start + self.timing.nand_page_read_ns
        self._busy_until[die] = end
        self.reads += 1
        if blocking:
            self.clock.advance_to(end)
        return data

    def peek(self, page: PhysicalPage) -> bytes:
        """Timing-free read for verification oracles.

        Returns the programmed data without advancing the clock, marking
        the die busy, or counting a read — the protocol monitor's shadow
        reads must be invisible to the simulation they check.
        """
        self._check_page(page)
        die = self._die(page)
        data = self._pages.get((die, page.block, page.page))
        if data is None:
            raise NandError(f"peek of unwritten page {page}")
        return data

    def erase(self, die: int, block: int, erase_ns: float = 3_000_000.0) -> float:
        """Erase a block, resetting its write point."""
        if not 0 <= die < self.geometry.dies:
            raise ValueError(f"die {die} out of range")
        start = max(self.clock.now, self._busy_until[die])
        end = start + erase_ns
        self._busy_until[die] = end
        self._write_points[(die, block)] = 0
        for page in range(self.geometry.pages_per_block):
            self._pages.pop((die, block, page), None)
        self.erases += 1
        return end

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def busy_until(self, die: int) -> float:
        return self._busy_until[die]

    @property
    def max_busy_until(self) -> float:
        return max(self._busy_until)

    def drain(self) -> None:
        """Advance the clock until every die is idle."""
        self.clock.advance_to(self.max_busy_until)

    # ------------------------------------------------------------------
    # persistence (repro.durability) — the array is PERSISTENT: a crash
    # never scrubs it.  scrub() models an explicit sanitize/erase-all,
    # wiping contents *in place* so geometry and identity survive.
    # ------------------------------------------------------------------
    def snapshot(self) -> object:
        return {
            "pages": dict(self._pages),
            "write_points": dict(self._write_points),
            "busy_until": list(self._busy_until),
            "counters": (self.programs, self.reads, self.erases),
        }

    def restore(self, state: object) -> None:
        assert isinstance(state, dict)
        self._pages = dict(state["pages"])
        self._write_points = dict(state["write_points"])
        self._busy_until = list(state["busy_until"])
        self.programs, self.reads, self.erases = state["counters"]

    def scrub(self) -> None:
        """Erase-all in place: data and write points gone, dies idle.

        Deliberately does NOT re-allocate the array — the device keeps
        its geometry (and whatever identity the personality hung off
        it) across a simulated controller reset.
        """
        self._pages.clear()
        self._write_points.clear()
        for die in range(len(self._busy_until)):
            self._busy_until[die] = 0.0
        self._inject_fail.clear()
