"""OpenSSD device assembly.

Wires the substrates into one simulated SSD: shared clock, PCIe link with
traffic counters, BAR space, device DRAM, NAND array + page-mapping FTL,
and the NVMe controller firmware.  Personalities (block SSD, KV-SSD, CSD)
attach opcode handlers on top — the same physical device model underneath,
exactly like the Cosmos+ firmware variants the paper evaluates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.durability.domains import (
    DEVICE_VOLATILE,
    HOST_VOLATILE,
    PERSISTENT,
    DurabilityMap,
)
from repro.host.memory import HostMemory
from repro.nvme.constants import IoOpcode, StatusCode
from repro.pcie.link import PCIeLink
from repro.pcie.mmio import BarSpace
from repro.pcie.traffic import TrafficCounter
from repro.sim.clock import SimClock
from repro.sim.config import PAGE_SIZE, SimConfig
from repro.ssd.controller import (
    MODE_QUEUE_LOCAL,
    CommandContext,
    CommandResult,
    NvmeController,
)
from repro.ssd.dram import DeviceDram
from repro.ssd.ftl import PageMappingFtl
from repro.ssd.nand import NandArray, NandError


class OpenSsd:
    """The simulated Cosmos+ OpenSSD.

    *fault_plan* (a :class:`repro.faults.FaultPlan`) arms deterministic
    fault injection across the whole rig: one shared
    :class:`~repro.faults.FaultInjector` is consulted by the PCIe link,
    the controller firmware, and the host driver.
    """

    def __init__(self, config: Optional[SimConfig] = None,
                 mode: str = MODE_QUEUE_LOCAL,
                 fault_plan=None) -> None:
        from repro.faults.plan import FaultInjector

        self.config = config or SimConfig()
        self.clock = SimClock(jitter=self.config.timing_jitter,
                              seed=self.config.seed)
        self.traffic = TrafficCounter()
        self.faults = FaultInjector(fault_plan, counter=self.traffic)
        self.host_memory = HostMemory()
        self.link = PCIeLink(self.config.link, self.config.timing,
                             self.traffic, injector=self.faults)
        self.bar = BarSpace()
        self.dram = DeviceDram(self.config.device_dram_bytes)
        self.nand = NandArray(self.clock, self.config.timing)
        self.ftl = PageMappingFtl(self.nand)
        self.controller = NvmeController(self.config, self.clock, self.link,
                                         self.host_memory, bar=self.bar,
                                         mode=mode, injector=self.faults)
        #: Persistence-domain registry (``repro.durability``): every
        #: state-holding component registers under the domain that
        #: decides whether it survives a power cut.  The FTL mapping
        #: cache is *checkpointed* — journaled at flush boundaries and
        #: restored at boot, like real firmware.
        self.durability = DurabilityMap()
        self.durability.register("host.memory", HOST_VOLATILE,
                                 self.host_memory)
        self.durability.register("ssd.dram", DEVICE_VOLATILE, self.dram)
        self.durability.register("ssd.controller", DEVICE_VOLATILE,
                                 self.controller)
        self.durability.register("ssd.ftl", DEVICE_VOLATILE, self.ftl,
                                 checkpointed=True)
        self.durability.register("ssd.nand", PERSISTENT, self.nand)

    @property
    def nand_enabled(self) -> bool:
        return self.config.nand_enabled


class BlockSsdPersonality:
    """Standard block-SSD firmware: NVM read/write over 4 KB logical pages.

    With NAND disabled (the paper's transfer-latency experiments) writes
    land in a DRAM staging buffer and are acknowledged immediately; with
    NAND enabled they do read-modify-write at logical-page granularity
    through the FTL.
    """

    def __init__(self, ssd: OpenSsd) -> None:
        self.ssd = ssd
        #: DRAM staging area for received payloads (the paper's "NAND page
        #: buffer entry of normal block SSDs", §3.3.1).
        self.staging = ssd.dram.carve("block.staging", 4 << 20)
        self._staging_off = 0
        #: NAND-off functional store: logical page -> bytes.
        self._pages: Dict[int, bytearray] = {}
        ssd.controller.register_handler(IoOpcode.WRITE, self._on_write)
        ssd.controller.register_handler(IoOpcode.READ, self._on_read)
        ssd.controller.register_handler(IoOpcode.FLUSH, self._on_flush)
        # The functional store stands in for the NAND medium when NAND is
        # off — it is the device's persistent surface either way (with
        # NAND on it merely mirrors what the FTL path wrote).
        ssd.durability.register("block.medium", PERSISTENT, self)

    # ------------------------------------------------------------------
    def _stage(self, data: bytes) -> None:
        """Land the payload in device DRAM (wraps when full)."""
        if self._staging_off + len(data) > self.staging.size:
            self._staging_off = 0
        self.staging.write(self._staging_off, data)
        self._staging_off += len(data)

    def _on_write(self, ctx: CommandContext) -> CommandResult:
        if ctx.data is None:
            return CommandResult(StatusCode.INVALID_FIELD)
        self._stage(ctx.data)
        offset = ctx.cmd.cdw10 | (ctx.cmd.cdw11 << 32)
        if not self.ssd.nand_enabled:
            self._write_functional(offset, ctx.data)
            return CommandResult()
        try:
            self._write_through_ftl(offset, ctx.data)
        except NandError:
            return CommandResult(StatusCode.MEDIA_WRITE_FAULT)
        return CommandResult()

    def _write_functional(self, offset: int, data: bytes) -> None:
        in_page = offset % PAGE_SIZE
        if data and in_page + len(data) <= PAGE_SIZE:
            # Fast path: the write lands in a single page.  (``get`` +
            # explicit insert, not ``setdefault`` — the latter would
            # allocate a fresh 4 KB default on every call.)
            lpn = offset // PAGE_SIZE
            page = self._pages.get(lpn)
            if page is None:
                page = self._pages[lpn] = bytearray(PAGE_SIZE)
            page[in_page:in_page + len(data)] = data
            return
        for lpn, start, piece in self._split_pages(offset, data):
            page = self._pages.setdefault(lpn, bytearray(PAGE_SIZE))
            page[start:start + len(piece)] = piece

    def _write_through_ftl(self, offset: int, data: bytes) -> None:
        for lpn, start, piece in self._split_pages(offset, data):
            if start != 0 or len(piece) != PAGE_SIZE:
                # Sub-page write: read-modify-write.
                try:
                    current = bytearray(self.ssd.ftl.read(lpn))
                except Exception:
                    current = bytearray(PAGE_SIZE)
                current[start:start + len(piece)] = piece
                self.ssd.ftl.write(lpn, bytes(current))
            else:
                self.ssd.ftl.write(lpn, piece)

    @staticmethod
    def _split_pages(offset: int, data: bytes):
        """Yield (lpn, start-in-page, piece) for a byte-ranged write."""
        pos = 0
        while pos < len(data):
            addr = offset + pos
            lpn = addr // PAGE_SIZE
            in_page = addr % PAGE_SIZE
            take = min(len(data) - pos, PAGE_SIZE - in_page)
            yield lpn, in_page, data[pos:pos + take]
            pos += take

    def _on_read(self, ctx: CommandContext) -> CommandResult:
        offset = ctx.cmd.cdw10 | (ctx.cmd.cdw11 << 32)
        nbytes = ctx.cmd.cdw13
        if nbytes == 0:
            return CommandResult(StatusCode.INVALID_FIELD)
        # Block devices return whole logical blocks: the read-side twin of
        # the write path's traffic amplification (paper §5).  The data is
        # padded up to the LBA boundary; SGL bit buckets can discard it.
        lba = self.ssd.config.lba_bytes
        nbytes = -(-nbytes // lba) * lba
        out = bytearray()
        pos = 0
        while pos < nbytes:
            addr = offset + pos
            lpn = addr // PAGE_SIZE
            in_page = addr % PAGE_SIZE
            take = min(nbytes - pos, PAGE_SIZE - in_page)
            if self.ssd.nand_enabled:
                try:
                    page = self.ssd.ftl.read(lpn)
                except Exception:
                    page = b"\x00" * PAGE_SIZE
            else:
                page = bytes(self._pages.get(lpn, b"\x00" * PAGE_SIZE))
            out += page[in_page:in_page + take]
            pos += take
        return CommandResult(read_data=bytes(out))

    def _on_flush(self, ctx: CommandContext) -> CommandResult:
        if self.ssd.nand_enabled:
            self.ssd.nand.drain()
        return CommandResult()

    # -- persistence (repro.durability) ------------------------------------
    def snapshot(self) -> object:
        return {lpn: bytes(page) for lpn, page in self._pages.items()}

    def restore(self, state: object) -> None:
        assert isinstance(state, dict)
        self._pages = {lpn: bytearray(page) for lpn, page in state.items()}

    def scrub(self) -> None:
        """Explicit sanitize of the functional medium (never at a crash —
        the medium is PERSISTENT).  Handlers and staging identity stay."""
        self._pages.clear()

    # -- test/inspection hooks ---------------------------------------------
    def read_back(self, offset: int, nbytes: int) -> bytes:
        """Direct functional read for verification in tests."""
        out = bytearray()
        pos = 0
        while pos < nbytes:
            addr = offset + pos
            lpn = addr // PAGE_SIZE
            in_page = addr % PAGE_SIZE
            take = min(nbytes - pos, PAGE_SIZE - in_page)
            if self.ssd.nand_enabled:
                page = self.ssd.ftl.read(lpn)
            else:
                page = bytes(self._pages.get(lpn, b"\x00" * PAGE_SIZE))
            out += page[in_page:in_page + take]
            pos += take
        return bytes(out)
