"""SSD substrate: NAND array, device DRAM, FTL, controller firmware,
and the assembled OpenSSD device model."""

from repro.ssd.controller import (
    MODE_QUEUE_LOCAL,
    MODE_TAGGED,
    CommandContext,
    CommandResult,
    NvmeController,
)
from repro.ssd.device import BlockSsdPersonality, OpenSsd
from repro.ssd.dram import DeviceDram, DramExhaustedError, DramRegion
from repro.ssd.ftl import FtlError, PageMappingFtl
from repro.ssd.nand import NandArray, NandError, NandGeometry, PhysicalPage

__all__ = [
    "NvmeController",
    "CommandContext",
    "CommandResult",
    "MODE_QUEUE_LOCAL",
    "MODE_TAGGED",
    "OpenSsd",
    "BlockSsdPersonality",
    "DeviceDram",
    "DramRegion",
    "DramExhaustedError",
    "PageMappingFtl",
    "FtlError",
    "NandArray",
    "NandError",
    "NandGeometry",
    "PhysicalPage",
]
