"""Shared firmware datatypes: what flows between the controller's units.

Leaf module (no intra-``repro.ssd`` imports) so the decomposed firmware —
:class:`~repro.ssd.fetch.FetchUnit`, :class:`~repro.ssd.admin.AdminEngine`,
:class:`~repro.ssd.completion_unit.CompletionUnit`, the datapath decoders
— and every handler-registering personality layer (block, KV, BandSlim,
MMIO, CSD) can all name these types without importing the controller.
``repro.ssd.controller`` re-exports them, so existing
``from repro.ssd.controller import CommandContext`` imports keep working.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.host.memory import HostMemory
from repro.nvme.command import NvmeCommand
from repro.nvme.completion import NvmeCompletion
from repro.nvme.constants import CQE_SIZE, StatusCode
from repro.nvme.queues import CqOverrunError

#: Fetch-from-SQ modes (paper §3.3.2).
MODE_QUEUE_LOCAL = "queue_local"
MODE_TAGGED = "tagged"

#: Admin queue id.
ADMIN_QID = 0


@dataclass(slots=True)
class CommandContext:
    """Everything an opcode handler sees for one command."""

    cmd: NvmeCommand
    qid: int
    #: Host→device payload, however it was transferred (PRP, SGL, inline).
    data: Optional[bytes] = None
    #: Transport tag from the datapath decoder that moved the payload
    #: (:data:`repro.datapath.names.TRANSPORT_PRP` / ``SGL`` / ``INLINE``
    #: / ...); ``None`` when no data phase ran.
    transport: Optional[str] = None


@dataclass(slots=True)
class CommandResult:
    """Handler outcome."""

    status: int = StatusCode.SUCCESS
    result: int = 0
    #: Device→host data (for read-style commands); DMA'd before completion.
    read_data: Optional[bytes] = None
    #: Firmware may suppress the CQE (BandSlim intermediate fragments are
    #: acknowledged only through the final fragment's completion).
    suppress_cqe: bool = False
    #: Transient failure: the CQE's DNR bit is left clear so the host's
    #: retry loop may resubmit.  Semantic rejections keep the default
    #: (DNR set) — retrying a malformed command cannot succeed.
    retryable: bool = False


Handler = Callable[[CommandContext], CommandResult]


@dataclass
class DeviceCqState:
    """The controller's private completion-queue producer state."""

    qid: int
    base_addr: int
    depth: int
    tail: int = 0
    phase: int = 1
    #: Host consume pointer, learned from CQ head doorbell writes.
    host_head: int = 0

    def slot_addr(self, index: int) -> int:
        return self.base_addr + (index % self.depth) * CQE_SIZE

    def is_full(self) -> bool:
        return (self.tail + 1) % self.depth == self.host_head

    def post(self, cqe: NvmeCompletion, memory: HostMemory) -> None:
        # is_full()/slot_addr() inlined: one CQE lands here per command.
        tail = self.tail
        depth = self.depth
        if (tail + 1) % depth == self.host_head:
            raise CqOverrunError(f"CQ{self.qid} overrun")
        cqe.phase = self.phase
        memory.write(self.base_addr + (tail % depth) * CQE_SIZE, cqe.pack())
        self.tail = tail = (tail + 1) % depth
        if tail == 0:
            self.phase ^= 1


@dataclass
class DeferredCommand:
    """Tagged-mode command parked until its payload reassembles."""

    cmd: NvmeCommand
    qid: int
    payload_id: int
