"""The controller's completion unit, decomposed out of the monolith.

:class:`CompletionUnit` owns CQE construction, completion-side fault
injection (delayed / dropped CQEs), coalesced posting (one DMA write +
one MSI-X per batch), and flushes.  It is a *unit* of the controller:
CQ state and stats stay on the controller, and the controller's
``_complete`` delegate remains the single externally-visible completion
entry (tests patch it; the protocol monitor's CQ wrappers hang off the
``DeviceCqState`` objects it posts through).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.faults.plan import DELAY_CQE, DROP_CQE
from repro.nvme.command import NvmeCommand
from repro.nvme.completion import NvmeCompletion
from repro.nvme.constants import CQE_SIZE, StatusCode
from repro.pcie import tlp as tlpmod
from repro.pcie.traffic import CAT_CQE, CAT_MSIX
from repro.ssd.context import ADMIN_QID, CommandResult

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.ssd.controller import NvmeController


class CompletionUnit:
    """CQE posting, coalescing, and completion-path fault injection."""

    def __init__(self, ctrl: "NvmeController") -> None:
        self.ctrl = ctrl
        # Fixed-shape batches for the per-CQE posting path, built once.
        self._cqe_batch = tlpmod.device_dma_write(CQE_SIZE, ctrl.link.config)
        self._msix_batch = tlpmod.msix_interrupt(ctrl.link.config)

    def complete(self, qid: int, cmd: NvmeCommand,
                 result: CommandResult) -> None:
        ctrl = self.ctrl
        if result.suppress_cqe:
            ctrl.commands_processed += 1
            return
        clock = ctrl.clock
        link = ctrl.link
        timing = ctrl.timing
        _span_start = clock.now
        try:
            state = ctrl._sqs[qid]
            cq = ctrl._cqs[ctrl._sq_cq[qid]]
            dnr = result.status != StatusCode.SUCCESS and not result.retryable
            cqe = NvmeCompletion(result.result, state.head, qid, cmd.cid,
                                 0, result.status, dnr)
            # CQE faults target the I/O path: a lost *admin* completion
            # has no in-band recovery (real drivers escalate to a
            # controller reset), so bring-up is exempt.  (``fire`` is a
            # no-op without a plan, so the ``active`` gate is pure
            # fast-path: opportunity streams only exist when armed.)
            if qid != 0 and ctrl.faults.active:
                if ctrl.faults.fire(DELAY_CQE):
                    clock.advance(ctrl.faults.delay_cqe_ns)
                if ctrl.faults.fire(DROP_CQE):
                    # The CQE write (or its MSI-X) is lost: the command
                    # ran, but the host learns nothing and must time out
                    # + retry.
                    ctrl.dropped_cqes += 1
                    clock.advance(timing.completion_post_ns)
                    ctrl.commands_processed += 1
                    return
            cq.post(cqe, ctrl.host_memory)
            if ctrl.config.cq_coalesce > 1 and qid != ADMIN_QID:
                # Coalesced posting: the CQE text is staged (functional
                # visibility keeps the phase-bit protocol intact); the
                # DMA write and MSI-X are batched — one of each per
                # ``cq_coalesce`` completions, or at quiescence.
                ctrl._coalesced[cq.qid] = ctrl._coalesced.get(cq.qid, 0) + 1
                clock.advance(timing.cqe_coalesce_ns)
                if ctrl._coalesced[cq.qid] >= ctrl.config.cq_coalesce:
                    self.flush_cq(cq.qid)
            else:
                link.record_only(CAT_CQE, self._cqe_batch)
                link.record_only(CAT_MSIX, self._msix_batch)
                clock.advance(timing.completion_post_ns)
        finally:
            clock.span_end("ctrl.completion", _span_start)
        ctrl.commands_processed += 1

    def flush_cq(self, cq_qid: int) -> None:
        """Post one buffered CQE batch: one DMA write, one MSI-X."""
        ctrl = self.ctrl
        count = ctrl._coalesced.pop(cq_qid, 0)
        if not count:
            return
        with ctrl.clock.span("ctrl.completion"):
            ctrl.link.record_only(
                CAT_CQE,
                tlpmod.device_dma_write(count * CQE_SIZE, ctrl.link.config))
            ctrl.link.record_only(CAT_MSIX, self._msix_batch)
            ctrl.clock.advance(ctrl.timing.completion_post_ns)
        ctrl.cqe_flushes += 1

    def flush_all(self) -> None:
        """Flush every CQ's buffered completion batch (idle transition,
        or any point the host needs the accounting settled)."""
        for cq_qid in list(self.ctrl._coalesced):
            self.flush_cq(cq_qid)
