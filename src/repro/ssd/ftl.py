"""Page-mapping flash translation layer.

A straightforward page-level FTL over :class:`repro.ssd.nand.NandArray`:
logical page numbers map to physical pages, writes append to per-die active
blocks (striped round-robin across dies for channel/way parallelism),
overwrites invalidate the old copy, and greedy garbage collection reclaims
the block with the fewest valid pages when a die runs low on free blocks.

The KV-SSD and block-write paths both sit on top of this; the paper's
transfer experiments do not stress GC, but a real substrate needs one and
the failure-injection tests exercise it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.ssd.nand import NandArray, PhysicalPage


class FtlError(Exception):
    """Logical-space errors: out-of-space, bad LPN."""


@dataclass
class _DieState:
    """Per-die allocation state."""

    active_block: int = 0
    next_page: int = 0
    free_blocks: List[int] = field(default_factory=list)
    #: block -> set of live page indices.
    valid: Dict[int, Set[int]] = field(default_factory=dict)


class PageMappingFtl:
    """Page-level FTL with greedy GC."""

    #: Trigger GC in a die when its free-block pool drops to this size.
    GC_THRESHOLD = 1

    def __init__(self, nand: NandArray) -> None:
        self.nand = nand
        g = nand.geometry
        self._map: Dict[int, PhysicalPage] = {}
        self._reverse: Dict[Tuple[int, int, int], int] = {}
        self._dies: List[_DieState] = []
        for _ in range(g.dies):
            state = _DieState(free_blocks=list(range(1, g.blocks_per_die)))
            state.valid[0] = set()
            self._dies.append(state)
        self._next_die = 0
        self.gc_runs = 0
        self.gc_migrations = 0
        self.host_writes = 0

    # ------------------------------------------------------------------
    # geometry helpers
    # ------------------------------------------------------------------
    def _die_coords(self, die: int) -> Tuple[int, int]:
        g = self.nand.geometry
        return die // g.ways, die % g.ways

    @property
    def logical_capacity_pages(self) -> int:
        """Logical pages exposed to the host (7/8 overprovisioning)."""
        return self.nand.geometry.total_pages * 7 // 8

    # ------------------------------------------------------------------
    # allocation
    # ------------------------------------------------------------------
    def _allocate(self, die: int) -> PhysicalPage:
        g = self.nand.geometry
        state = self._dies[die]
        if len(state.free_blocks) <= self.GC_THRESHOLD:
            # GC may migrate live pages into the active block, so the
            # rollover check below must come *after* any collection.
            self._collect(die)
        while state.next_page >= g.pages_per_block:
            if not state.free_blocks:
                self._collect(die)
            if not state.free_blocks:
                raise FtlError(f"die {die}: no free blocks after GC")
            state.active_block = state.free_blocks.pop(0)
            state.next_page = 0
            state.valid.setdefault(state.active_block, set())
        channel, way = self._die_coords(die)
        page = PhysicalPage(channel, way, state.active_block, state.next_page)
        state.next_page += 1
        return page

    # ------------------------------------------------------------------
    # host operations
    # ------------------------------------------------------------------
    def write(self, lpn: int, data: bytes, blocking: bool = False) -> PhysicalPage:
        """Write one logical page; returns its new physical location."""
        if lpn < 0 or lpn >= self.logical_capacity_pages:
            raise FtlError(f"LPN {lpn} outside logical capacity")
        die = self._next_die
        self._next_die = (self._next_die + 1) % self.nand.geometry.dies
        ppage = self._allocate(die)
        self.nand.program(ppage, data, blocking=blocking)
        self._invalidate(lpn)
        self._map[lpn] = ppage
        die_idx = self.nand.geometry.die_index(ppage.channel, ppage.way)
        self._dies[die_idx].valid[ppage.block].add(ppage.page)
        self._reverse[(die_idx, ppage.block, ppage.page)] = lpn
        self.host_writes += 1
        return ppage

    def read(self, lpn: int) -> bytes:
        ppage = self._map.get(lpn)
        if ppage is None:
            raise FtlError(f"LPN {lpn} has never been written")
        return self.nand.read(ppage)

    def peek(self, lpn: int) -> bytes:
        """Timing-free read for verification oracles (no NAND charge)."""
        ppage = self._map.get(lpn)
        if ppage is None:
            raise FtlError(f"LPN {lpn} has never been written")
        return self.nand.peek(ppage)

    def trim(self, lpn: int) -> None:
        """Discard a logical page (DSM deallocate)."""
        self._invalidate(lpn)
        self._map.pop(lpn, None)

    def _invalidate(self, lpn: int) -> None:
        old = self._map.get(lpn)
        if old is None:
            return
        die = self.nand.geometry.die_index(old.channel, old.way)
        self._dies[die].valid[old.block].discard(old.page)
        self._reverse.pop((die, old.block, old.page), None)

    # ------------------------------------------------------------------
    # garbage collection
    # ------------------------------------------------------------------
    def _collect(self, die: int) -> None:
        """Greedy GC: reclaim the non-active block with fewest valid pages.

        Only victims with reclaimable space (at least one invalid page)
        are considered, and only when their live pages fit in the room we
        have to migrate into — otherwise collection is a net loss or a
        deadlock, so it is skipped until overwrites create garbage.
        """
        g = self.nand.geometry
        state = self._dies[die]
        room = (g.pages_per_block - min(state.next_page, g.pages_per_block)
                + g.pages_per_block * len(state.free_blocks))
        candidates = [b for b in state.valid
                      if b != state.active_block
                      and b not in state.free_blocks
                      and len(state.valid[b]) < g.pages_per_block
                      and len(state.valid[b]) < room]
        if not candidates:
            return
        victim = min(candidates, key=lambda b: len(state.valid[b]))
        live = sorted(state.valid[victim])
        channel, way = self._die_coords(die)
        for page_idx in live:
            lpn = self._reverse.get((die, victim, page_idx))
            if lpn is None:  # pragma: no cover - defensive
                continue
            data = self.nand.read(PhysicalPage(channel, way, victim, page_idx))
            # Migration writes follow the normal allocation path but must
            # not recurse into GC; the active block always has room or is
            # replaced from the free pool first.
            self._migrate(die, lpn, data)
            self.gc_migrations += 1
        state.valid[victim] = set()
        self.nand.erase(die, victim)
        state.free_blocks.append(victim)
        self.gc_runs += 1

    def _migrate(self, die: int, lpn: int, data: bytes) -> None:
        g = self.nand.geometry
        state = self._dies[die]
        if state.next_page >= g.pages_per_block:
            if not state.free_blocks:
                raise FtlError(f"die {die}: GC deadlock, no room to migrate")
            state.active_block = state.free_blocks.pop(0)
            state.next_page = 0
            state.valid.setdefault(state.active_block, set())
        channel, way = self._die_coords(die)
        ppage = PhysicalPage(channel, way, state.active_block, state.next_page)
        state.next_page += 1
        self.nand.program(ppage, data)
        self._invalidate(lpn)
        self._map[lpn] = ppage
        state.valid[ppage.block].add(ppage.page)
        self._reverse[(die, ppage.block, ppage.page)] = lpn

    # ------------------------------------------------------------------
    # persistence (repro.durability)
    # ------------------------------------------------------------------
    # The mapping table lives in controller DRAM: DEVICE_VOLATILE, but
    # *checkpointed* — real firmware journals it to NAND at flush
    # boundaries and re-reads it at boot.  snapshot() is that journal
    # image; scrub() is the power cut; restore() is the boot re-read.

    def snapshot(self) -> object:
        return {
            "map": dict(self._map),
            "reverse": dict(self._reverse),
            "dies": [(s.active_block, s.next_page, list(s.free_blocks),
                      {b: set(v) for b, v in s.valid.items()})
                     for s in self._dies],
            "next_die": self._next_die,
            "counters": (self.gc_runs, self.gc_migrations,
                         self.host_writes),
        }

    def restore(self, state: object) -> None:
        assert isinstance(state, dict)
        self._map = dict(state["map"])
        self._reverse = dict(state["reverse"])
        self._dies = []
        for active_block, next_page, free_blocks, valid in state["dies"]:
            self._dies.append(_DieState(
                active_block=active_block, next_page=next_page,
                free_blocks=list(free_blocks),
                valid={b: set(v) for b, v in valid.items()}))
        self._next_die = state["next_die"]
        self.gc_runs, self.gc_migrations, self.host_writes = (
            state["counters"])

    def scrub(self) -> None:
        """Drop the mapping cache in place (the NAND array is not ours
        to touch — it survives in its own persistence domain)."""
        g = self.nand.geometry
        self._map.clear()
        self._reverse.clear()
        self._dies = []
        for _ in range(g.dies):
            state = _DieState(free_blocks=list(range(1, g.blocks_per_die)))
            state.valid[0] = set()
            self._dies.append(state)
        self._next_die = 0

    def resync_with_nand(self) -> int:
        """Reconcile allocation state with the NAND write points.

        After a crash restores a *stale* mapping checkpoint, the NAND
        array may hold programs the restored die state never allocated;
        handing those pages out again would violate flash program-order
        discipline.  Real firmware scans blocks at boot to find the
        true write points — this is that scan, skipping every die's
        cursor past what NAND actually holds.  The skipped pages carry
        no mapping, so they are plain garbage for GC.  Returns the
        number of pages skipped.
        """
        g = self.nand.geometry
        skipped = 0
        for (die, block), point in self.nand._write_points.items():
            state = self._dies[die]
            if block == state.active_block:
                if point > state.next_page:
                    skipped += point - state.next_page
                    state.next_page = point
            elif block in state.free_blocks and point > 0:
                # A "free" block with programmed pages: pull it out of
                # the pool and park the cursor past its contents.
                state.free_blocks.remove(block)
                state.valid.setdefault(block, set())
                skipped += point
        return skipped

    # ------------------------------------------------------------------
    # stats
    # ------------------------------------------------------------------
    @property
    def write_amplification(self) -> float:
        """(host + GC writes) / host writes."""
        if self.host_writes == 0:
            return 0.0
        return (self.host_writes + self.gc_migrations) / self.host_writes
