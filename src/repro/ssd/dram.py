"""Device DRAM buffer manager.

The Cosmos+ carries 1 GB of DRAM used for command staging, NAND page
buffers, the KV value log, and — for ByteExpress — the designated buffer
that inline payload chunks land in (paper §3.3.1: "a key-value log of
KV-SSDs, a workspace for filter processing in CSDs, or even a NAND page
buffer entry of normal block SSDs").

A named-region bump allocator is sufficient: firmware carves DRAM into
fixed regions at boot and never frees them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


class DramExhaustedError(Exception):
    """Raised when region allocation exceeds DRAM capacity."""


@dataclass
class DramRegion:
    """One named carve-out of device DRAM."""

    name: str
    base: int
    size: int
    _data: bytearray

    def write(self, offset: int, data: bytes) -> None:
        if offset < 0 or offset + len(data) > self.size:
            raise ValueError(
                f"write [{offset}, {offset + len(data)}) outside region "
                f"'{self.name}' of {self.size} B")
        self._data[offset:offset + len(data)] = data

    def read(self, offset: int, nbytes: int) -> bytes:
        if offset < 0 or offset + nbytes > self.size:
            raise ValueError(
                f"read [{offset}, {offset + nbytes}) outside region "
                f"'{self.name}' of {self.size} B")
        return bytes(self._data[offset:offset + nbytes])

    # -- persistence (repro.durability) -----------------------------------
    def snapshot(self) -> object:
        return bytes(self._data)

    def restore(self, state: object) -> None:
        assert isinstance(state, bytes) and len(state) == self.size
        self._data[:] = state

    def scrub(self) -> None:
        """Zero the region in place; name/base/size identity survives."""
        self._data[:] = bytes(self.size)


class DeviceDram:
    """Device DRAM: capacity-checked named regions."""

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("DRAM capacity must be positive")
        self.capacity = capacity
        self._next = 0
        self._regions: Dict[str, DramRegion] = {}

    def carve(self, name: str, size: int) -> DramRegion:
        """Allocate a named region; names are unique."""
        if size <= 0:
            raise ValueError("region size must be positive")
        if name in self._regions:
            raise ValueError(f"region '{name}' already exists")
        if self._next + size > self.capacity:
            raise DramExhaustedError(
                f"cannot carve {size} B for '{name}': "
                f"{self.capacity - self._next} B free")
        region = DramRegion(name, self._next, size, bytearray(size))
        self._next += size
        self._regions[name] = region
        return region

    def region(self, name: str) -> DramRegion:
        return self._regions[name]

    @property
    def used(self) -> int:
        return self._next

    @property
    def free(self) -> int:
        return self.capacity - self._next

    # -- persistence (repro.durability) -----------------------------------
    def snapshot(self) -> object:
        return {name: region.snapshot()
                for name, region in self._regions.items()}

    def restore(self, state: object) -> None:
        assert isinstance(state, dict)
        for name, image in state.items():
            self._regions[name].restore(image)

    def scrub(self) -> None:
        """Zero every carved region in place.

        The carve map survives — firmware re-finds its regions by name
        after a reset instead of re-carving (which would raise on the
        duplicate name and leak capacity).
        """
        for region in self._regions.values():
            region.scrub()
