"""On-device table store.

Tables live inside the SSD (the whole point of pushdown: the data is
already there).  Rows are appended in packed wire format into NAND pages
through the FTL, with a DRAM-pinned row directory for scan decoding — the
same layering as the KV value log.  A full scan therefore charges NAND
read time, which is what makes in-device filtering observable in the
simulation's clock.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Tuple

from repro.csd.schema import TableSchema
from repro.ssd.ftl import PageMappingFtl


class TableError(Exception):
    """Unknown table, schema mismatch, capacity issues."""


@dataclass
class DeviceTable:
    """One table: schema + packed rows persisted via the FTL."""

    schema: TableSchema
    ftl: PageMappingFtl
    lpn_base: int
    nand_enabled: bool = True
    #: Logical pages holding row data, in append order.
    lpns: List[int] = field(default_factory=list)
    #: In-DRAM mirror of the packed bytes (row directory + fast decode).
    _buffer: bytearray = field(default_factory=bytearray)
    row_count: int = 0

    def append_rows(self, rows: List[Tuple[object, ...]]) -> None:
        """Append rows, persisting full pages to NAND as they fill."""
        page_bytes = self.ftl.nand.geometry.page_bytes
        for row in rows:
            self._buffer += self.schema.pack_row(row)
            self.row_count += 1
        if self.nand_enabled:
            full_pages = len(self._buffer) // page_bytes
            already = len(self.lpns)
            for i in range(already, full_pages):
                lpn = self.lpn_base + i
                self.ftl.write(lpn,
                               bytes(self._buffer[i * page_bytes:
                                                  (i + 1) * page_bytes]))
                self.lpns.append(lpn)

    def scan_rows(self) -> List[Tuple[object, ...]]:
        """Materialise all rows (NAND reads charged for persisted pages)."""
        if self.nand_enabled:
            for lpn in self.lpns:
                self.ftl.read(lpn)  # charge the media time
        return self.schema.unpack_rows(bytes(self._buffer))

    def iter_rows(self) -> Iterator[dict]:
        """Rows as column-name dicts (the filter executor's input)."""
        names = [c.name for c in self.schema.columns]
        for row in self.scan_rows():
            yield dict(zip(names, row))


class TableStore:
    """The device's catalog of tables."""

    #: Each table gets a disjoint logical-page window of this many pages.
    PAGES_PER_TABLE = 4096

    def __init__(self, ftl: PageMappingFtl, lpn_base: int,
                 nand_enabled: bool = True) -> None:
        self.ftl = ftl
        self.lpn_base = lpn_base
        self.nand_enabled = nand_enabled
        self._tables: Dict[str, DeviceTable] = {}

    def create(self, schema: TableSchema) -> DeviceTable:
        if schema.name in self._tables:
            raise TableError(f"table {schema.name!r} already exists")
        base = self.lpn_base + len(self._tables) * self.PAGES_PER_TABLE
        table = DeviceTable(schema=schema, ftl=self.ftl, lpn_base=base,
                            nand_enabled=self.nand_enabled)
        self._tables[schema.name] = table
        return table

    def get(self, name: str) -> DeviceTable:
        table = self._tables.get(name)
        if table is None:
            raise TableError(f"no such table: {name!r}")
        return table

    def exists(self, name: str) -> bool:
        return name in self._tables

    @property
    def names(self) -> List[str]:
        return sorted(self._tables)
