"""SQL predicate pushdown: device personality + host client (Figure 7).

The host encodes a computation task — either the full SQL string or just
the ``table;predicate`` segment — as the payload of a vendor NVMe command
and ships it to the SSD by any transfer method.  The device parses the
message against its stored schemas, runs (or queues) the filter, and the
host fetches matching rows with a result command.

This is the paper's CSD scenario: the task messages are tens to hundreds
of bytes (Figure 4), exactly the regime where PRP's page-granular DMA
wastes two orders of magnitude of PCIe traffic.
"""

from __future__ import annotations

import struct
from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional, Tuple

from repro.datapath import names as dp_names
from repro.csd.filter import FilterExecutor, FilterResult
from repro.csd.schema import TableSchema
from repro.csd.sql import SqlError, parse_predicate, parse_query
from repro.csd.table import TableError, TableStore
from repro.host.driver import NvmeDriver
from repro.nvme.command import NvmeCommand
from repro.nvme.constants import StatusCode, VendorOpcode
from repro.ssd.controller import CommandContext, CommandResult
from repro.ssd.device import OpenSsd
from repro.transfer.base import TransferMethod, TransferStats

_NAME_HEADER = struct.Struct("<H")


@dataclass(frozen=True)
class PushdownTask:
    """A parsed task message."""

    table: str
    predicate: object  # Expr or None
    raw_len: int


def parse_task_message(message: str) -> PushdownTask:
    """Accept both Figure-7 forms: full SQL, or ``table;predicate``."""
    stripped = message.strip()
    if stripped.lower().startswith("select"):
        query = parse_query(stripped)
        return PushdownTask(query.table, query.where,
                            len(message.encode("utf-8")))
    table, sep, predicate = stripped.partition(";")
    table = table.strip()
    if not table:
        raise SqlError("task message has no table identifier")
    expr = parse_predicate(predicate) if sep and predicate.strip() else None
    return PushdownTask(table, expr, len(message.encode("utf-8")))


class CsdPersonality:
    """Device firmware: table catalog, task queue, filter executor."""

    def __init__(self, ssd: OpenSsd, execute_inline: bool = True,
                 workspace_bytes: int = 8 << 20) -> None:
        self.ssd = ssd
        base = ssd.ftl.logical_capacity_pages // 2
        self.store = TableStore(ssd.ftl, lpn_base=base,
                                nand_enabled=ssd.nand_enabled)
        self.executor = FilterExecutor(ssd.clock)
        self.execute_inline = execute_inline
        #: The "workspace for filter processing" — results wait here until
        #: the host fetches them.
        self.workspace = ssd.dram.carve("csd.workspace", workspace_bytes)
        self._results: Deque[FilterResult] = deque()
        self._pending: Deque[PushdownTask] = deque()
        ctl = ssd.controller
        ctl.register_handler(VendorOpcode.CSD_PUSHDOWN, self._on_pushdown)
        ctl.register_handler(VendorOpcode.CSD_CREATE_TABLE, self._on_create)
        ctl.register_handler(VendorOpcode.CSD_LOAD_ROWS, self._on_load)
        ctl.register_handler(VendorOpcode.CSD_FETCH_RESULT, self._on_fetch,
                             data_phase=False)
        self.tasks_received = 0

    # ------------------------------------------------------------------
    def _on_pushdown(self, ctx: CommandContext) -> CommandResult:
        if ctx.data is None:
            return CommandResult(StatusCode.INVALID_FIELD)
        self.ssd.clock.advance(self.ssd.config.timing.csd_task_setup_ns)
        try:
            task = parse_task_message(ctx.data.decode("utf-8"))
            table = self.store.get(task.table)
            self.executor.validate(table, task.predicate)
        except (SqlError, TableError, UnicodeDecodeError):
            return CommandResult(StatusCode.INVALID_FIELD)
        self.tasks_received += 1
        if self.execute_inline:
            result = self.executor.execute(table, task.predicate)
            self._results.append(result)
            return CommandResult(result=len(result.rows))
        self._pending.append(task)
        return CommandResult(result=0)

    def _on_create(self, ctx: CommandContext) -> CommandResult:
        if ctx.data is None:
            return CommandResult(StatusCode.INVALID_FIELD)
        try:
            schema = TableSchema.unpack(ctx.data)
            self.store.create(schema)
        except (ValueError, TableError):
            return CommandResult(StatusCode.INVALID_FIELD)
        return CommandResult()

    def _on_load(self, ctx: CommandContext) -> CommandResult:
        if ctx.data is None or len(ctx.data) < _NAME_HEADER.size:
            return CommandResult(StatusCode.INVALID_FIELD)
        (name_len,) = _NAME_HEADER.unpack_from(ctx.data)
        name = ctx.data[_NAME_HEADER.size:_NAME_HEADER.size + name_len]
        body = ctx.data[_NAME_HEADER.size + name_len:]
        try:
            table = self.store.get(name.decode("utf-8"))
            rows = table.schema.unpack_rows(body)
            table.append_rows(rows)
        except (TableError, ValueError, struct.error, UnicodeDecodeError):
            return CommandResult(StatusCode.INVALID_FIELD)
        return CommandResult(result=len(rows))

    def _on_fetch(self, ctx: CommandContext) -> CommandResult:
        if not self._results:
            return CommandResult(StatusCode.KV_KEY_NOT_FOUND)
        result = self._results.popleft()
        packed = result.pack()
        limit = ctx.cmd.cdw13 or len(packed)
        if len(packed) > self.workspace.size:
            return CommandResult(StatusCode.INTERNAL_ERROR)
        self.workspace.write(0, packed)
        return CommandResult(result=len(result.rows),
                             read_data=packed[:limit])

    # ------------------------------------------------------------------
    def run_pending(self) -> int:
        """Execute queued tasks (transfer-rate benchmarks defer this)."""
        ran = 0
        while self._pending:
            task = self._pending.popleft()
            table = self.store.get(task.table)
            self._results.append(self.executor.execute(table, task.predicate))
            ran += 1
        return ran

    @property
    def pending_tasks(self) -> int:
        return len(self._pending)

    @property
    def queued_results(self) -> int:
        return len(self._results)


class CsdClient:
    """Host library: table setup + pushdown over any transfer method."""

    #: Row-load batch size (bytes) for the bulk PRP path.
    LOAD_BATCH_BYTES = 32 * 1024

    def __init__(self, driver: NvmeDriver, method: TransferMethod,
                 qid: Optional[int] = None) -> None:
        self.driver = driver
        self.method = method
        self.qid = qid if qid is not None else driver.io_qids[0]

    # ------------------------------------------------------------------
    def create_table(self, schema: TableSchema) -> None:
        stats = self.method.write(schema.pack(),
                                  opcode=VendorOpcode.CSD_CREATE_TABLE,
                                  qid=self.qid)
        if not stats.ok:
            raise TableError(
                f"create_table failed with status {stats.status:#x}")

    def load_rows(self, schema: TableSchema,
                  rows: List[Tuple[object, ...]]) -> None:
        """Bulk-load rows over the stock PRP path (bulk data is exactly
        what PRP is good at — the paper's point is about *small* payloads)."""
        name = schema.name.encode("utf-8")
        header = _NAME_HEADER.pack(len(name)) + name
        batch = bytearray(header)
        for row in rows:
            packed = schema.pack_row(row)
            if len(batch) + len(packed) > self.LOAD_BATCH_BYTES and \
                    len(batch) > len(header):
                self._send_batch(bytes(batch))
                batch = bytearray(header)
            batch += packed
        if len(batch) > len(header):
            self._send_batch(bytes(batch))

    def _send_batch(self, payload: bytes) -> None:
        from repro.nvme.passthrough import PassthruRequest

        req = PassthruRequest(opcode=VendorOpcode.CSD_LOAD_ROWS, data=payload)
        result = self.driver.passthru(req, method=dp_names.PRP, qid=self.qid)
        if not result.ok:
            raise TableError(f"load_rows failed with status {result.status:#x}")

    # ------------------------------------------------------------------
    def pushdown(self, message: str) -> TransferStats:
        """Ship one task message; returns the transfer measurement."""
        stats = self.method.write(message.encode("utf-8"),
                                  opcode=VendorOpcode.CSD_PUSHDOWN,
                                  qid=self.qid)
        if not stats.ok:
            raise SqlError(f"pushdown failed with status {stats.status:#x}")
        return stats

    def fetch_results(self, schema: TableSchema,
                      max_len: int = 32 * 1024) -> List[Tuple[object, ...]]:
        """Retrieve the oldest completed filter result."""
        cmd = NvmeCommand(opcode=VendorOpcode.CSD_FETCH_RESULT)
        _, buf = self.driver.submit_read_prp(cmd, max_len, self.qid)
        cqe = self.driver.wait(self.qid)
        if cqe.status == StatusCode.KV_KEY_NOT_FOUND:
            raise SqlError("no filter results queued on the device")
        if not cqe.ok:
            raise SqlError(f"fetch_results failed with status {cqe.status:#x}")
        raw = self.driver.memory.read(buf, max_len)
        return schema.unpack_rows(self._trim(schema, raw, cqe.result))

    @staticmethod
    def _trim(schema: TableSchema, raw: bytes, row_count: int) -> bytes:
        """Cut the scratch buffer down to exactly *row_count* packed rows."""
        import struct as _struct

        from repro.csd.schema import ColumnType

        pos = 0
        for _ in range(row_count):
            for col in schema.columns:
                if col.ctype in (ColumnType.INT64, ColumnType.FLOAT64):
                    pos += 8
                else:
                    (n,) = _struct.unpack_from("<H", raw, pos)
                    pos += 2 + n
        return raw[:pos]
