"""SQL SELECT/WHERE parsing for predicate pushdown.

CSD prototypes (YourSQL, Biscuit) early-execute SELECT-WHERE filters inside
the SSD.  The pushdown message is either a full SQL string or just the
table-and-predicate segment (Figure 4 / Figure 7 compare both), so the
device needs a parser for both forms.

Supported grammar (sufficient for the paper's query corpus):

    query      := SELECT select_list FROM ident [WHERE expr]
                  [GROUP BY ...] [ORDER BY ...] [';']
    expr       := and_expr (OR and_expr)*
    and_expr   := not_expr (AND not_expr)*
    not_expr   := NOT not_expr | primary
    primary    := '(' expr ')' | comparison
    comparison := operand ('='|'!='|'<>'|'<'|'<='|'>'|'>=') operand
    operand    := ident | number | string | DATE string
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Optional, Union


class SqlError(Exception):
    """Parse or evaluation failure."""


# ---------------------------------------------------------------------------
# AST
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ColumnRef:
    name: str


@dataclass(frozen=True)
class Literal:
    value: Union[int, float, str]


Operand = Union[ColumnRef, Literal]


@dataclass(frozen=True)
class Comparison:
    op: str
    left: Operand
    right: Operand


@dataclass(frozen=True)
class And:
    left: "Expr"
    right: "Expr"


@dataclass(frozen=True)
class Or:
    left: "Expr"
    right: "Expr"


@dataclass(frozen=True)
class Not:
    inner: "Expr"


Expr = Union[Comparison, And, Or, Not]


@dataclass(frozen=True)
class SelectQuery:
    select_list: str
    table: str
    where: Optional[Expr]
    #: Raw text of the WHERE clause (for segment extraction).
    where_text: str = ""


# ---------------------------------------------------------------------------
# tokenizer
# ---------------------------------------------------------------------------
_TOKEN_RE = re.compile(r"""
      (?P<ws>\s+)
    | (?P<number>\d+\.\d*(?:[eE][+-]?\d+)?|\.\d+(?:[eE][+-]?\d+)?
               |\d+(?:[eE][+-]?\d+)?)
    | (?P<ident>[A-Za-z_][A-Za-z0-9_.]*)
    | (?P<string>'(?:[^']|'')*')
    | (?P<op><=|>=|<>|!=|=|<|>)
    | (?P<punct>[(),;*])
""", re.VERBOSE)

_KEYWORDS = {"select", "from", "where", "and", "or", "not", "group",
             "order", "by", "date", "asc", "desc", "limit", "between"}


@dataclass(frozen=True)
class _Token:
    kind: str
    text: str
    pos: int


def tokenize(sql: str) -> List[_Token]:
    tokens: List[_Token] = []
    pos = 0
    while pos < len(sql):
        m = _TOKEN_RE.match(sql, pos)
        if m is None:
            raise SqlError(f"unexpected character {sql[pos]!r} at {pos}")
        pos = m.end()
        kind = m.lastgroup
        if kind == "ws":
            continue
        text = m.group()
        if kind == "ident" and text.lower() in _KEYWORDS:
            kind, text = "keyword", text.lower()
        tokens.append(_Token(kind, text, m.start()))
    return tokens


# ---------------------------------------------------------------------------
# parser
# ---------------------------------------------------------------------------
class _Parser:
    def __init__(self, tokens: List[_Token], source: str) -> None:
        self.tokens = tokens
        self.source = source
        self.i = 0

    def peek(self) -> Optional[_Token]:
        return self.tokens[self.i] if self.i < len(self.tokens) else None

    def next(self) -> _Token:
        tok = self.peek()
        if tok is None:
            raise SqlError("unexpected end of input")
        self.i += 1
        return tok

    def expect_keyword(self, word: str) -> _Token:
        tok = self.next()
        if tok.kind != "keyword" or tok.text != word:
            raise SqlError(f"expected {word.upper()!r}, got {tok.text!r}")
        return tok

    def accept_keyword(self, word: str) -> bool:
        tok = self.peek()
        if tok is not None and tok.kind == "keyword" and tok.text == word:
            self.i += 1
            return True
        return False

    # -- expression grammar -------------------------------------------------
    def parse_expr(self) -> Expr:
        left = self.parse_and()
        while self.accept_keyword("or"):
            left = Or(left, self.parse_and())
        return left

    def parse_and(self) -> Expr:
        left = self.parse_not()
        while self.accept_keyword("and"):
            left = And(left, self.parse_not())
        return left

    def parse_not(self) -> Expr:
        if self.accept_keyword("not"):
            return Not(self.parse_not())
        return self.parse_primary()

    def parse_primary(self) -> Expr:
        tok = self.peek()
        if tok is not None and tok.kind == "punct" and tok.text == "(":
            self.next()
            inner = self.parse_expr()
            closing = self.next()
            if closing.text != ")":
                raise SqlError("expected ')'")
            return inner
        return self.parse_comparison()

    def parse_comparison(self) -> Comparison:
        left = self.parse_operand()
        op_tok = self.next()
        if op_tok.kind != "op":
            raise SqlError(f"expected comparison operator, got {op_tok.text!r}")
        op = "!=" if op_tok.text == "<>" else op_tok.text
        right = self.parse_operand()
        return Comparison(op, left, right)

    def parse_operand(self) -> Operand:
        tok = self.next()
        if tok.kind == "ident":
            return ColumnRef(tok.text)
        if tok.kind == "number":
            text = tok.text
            if "." in text or "e" in text.lower():
                return Literal(float(text))
            return Literal(int(text))
        if tok.kind == "string":
            return Literal(tok.text[1:-1].replace("''", "'"))
        if tok.kind == "keyword" and tok.text == "date":
            string = self.next()
            if string.kind != "string":
                raise SqlError("DATE must be followed by a string literal")
            return Literal(string.text[1:-1])
        raise SqlError(f"bad operand {tok.text!r}")


def parse_predicate(text: str) -> Expr:
    """Parse a bare predicate expression (the pushdown segment form)."""
    parser = _Parser(tokenize(text), text)
    expr = parser.parse_expr()
    if parser.peek() is not None:
        raise SqlError(f"trailing tokens after predicate: "
                       f"{parser.peek().text!r}")
    return expr


def parse_query(sql: str) -> SelectQuery:
    """Parse a full SELECT statement (the full-string pushdown form)."""
    tokens = tokenize(sql)
    parser = _Parser(tokens, sql)
    parser.expect_keyword("select")

    depth = 0
    select_tokens: List[_Token] = []
    while True:
        tok = parser.peek()
        if tok is None:
            raise SqlError("missing FROM clause")
        if tok.kind == "keyword" and tok.text == "from" and depth == 0:
            break
        if tok.kind == "punct" and tok.text == "(":
            depth += 1
        if tok.kind == "punct" and tok.text == ")":
            depth -= 1
        select_tokens.append(parser.next())
    if not select_tokens:
        raise SqlError("empty select list")
    select_list = sql[select_tokens[0].pos:
                      select_tokens[-1].pos + len(select_tokens[-1].text)]

    parser.expect_keyword("from")
    table_tok = parser.next()
    if table_tok.kind != "ident":
        raise SqlError(f"expected table name, got {table_tok.text!r}")

    where: Optional[Expr] = None
    where_text = ""
    if parser.accept_keyword("where"):
        where_start = parser.peek()
        if where_start is None:
            raise SqlError("empty WHERE clause")
        where = parser.parse_expr()
        last = parser.tokens[parser.i - 1]
        where_text = sql[where_start.pos:last.pos + len(last.text)]

    # Tolerate (and ignore) trailing GROUP BY / ORDER BY / LIMIT clauses —
    # filtering is the only device-side operation.
    while parser.peek() is not None:
        tok = parser.next()
        if tok.kind == "punct" and tok.text == ";":
            break
    return SelectQuery(select_list=select_list.strip(), table=table_tok.text,
                       where=where, where_text=where_text.strip())


def extract_segment(sql: str) -> str:
    """The table-and-predicate segment of a query (Figure 4's right bars).

    Format: ``<table>;<predicate>`` — what a binary-frugal host would send
    instead of the full SQL string.
    """
    query = parse_query(sql)
    if query.where is None:
        return query.table
    return f"{query.table};{query.where_text}"


# ---------------------------------------------------------------------------
# evaluation
# ---------------------------------------------------------------------------
def evaluate(expr: Expr, row: dict) -> bool:
    """Evaluate a predicate over a row (mapping of column name → value)."""
    if isinstance(expr, And):
        return evaluate(expr.left, row) and evaluate(expr.right, row)
    if isinstance(expr, Or):
        return evaluate(expr.left, row) or evaluate(expr.right, row)
    if isinstance(expr, Not):
        return not evaluate(expr.inner, row)
    if isinstance(expr, Comparison):
        left = _resolve(expr.left, row)
        right = _resolve(expr.right, row)
        return _compare(expr.op, left, right)
    raise SqlError(f"cannot evaluate {expr!r}")


def _resolve(operand: Operand, row: dict):
    if isinstance(operand, ColumnRef):
        try:
            return row[operand.name]
        except KeyError:
            raise SqlError(f"unknown column {operand.name!r}")
    return operand.value


def _compare(op: str, left, right) -> bool:
    if isinstance(left, str) != isinstance(right, str):
        raise SqlError(
            f"type mismatch comparing {left!r} {op} {right!r}")
    if op == "=":
        return left == right
    if op == "!=":
        return left != right
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    if op == ">=":
        return left >= right
    raise SqlError(f"unknown operator {op!r}")


def predicate_columns(expr: Expr) -> List[str]:
    """All column names referenced by a predicate."""
    if isinstance(expr, (And, Or)):
        return predicate_columns(expr.left) + predicate_columns(expr.right)
    if isinstance(expr, Not):
        return predicate_columns(expr.inner)
    if isinstance(expr, Comparison):
        out = []
        for operand in (expr.left, expr.right):
            if isinstance(operand, ColumnRef):
                out.append(operand.name)
        return out
    return []
