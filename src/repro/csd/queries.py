"""The Figure-4 query corpus.

The paper characterises pushdown message sizes using example queries from
prior CSD studies: the VPIC particle-in-cell simulation, the Laghos
hydrodynamics dataset, the LANL deep-water asteroid-impact dataset, and
TPC-H Q1/Q2 as used by YourSQL/Biscuit (filtering on a single table —
``lineitem`` for Q1, ``region`` for Q2).

For each workload we provide the full SQL string, the table+predicate
segment (Figure 4's two bars; Figure 7 sends both forms), a schema, and a
deterministic synthetic row generator so the filters actually execute.
Scientific full strings are under 100 bytes and TPC-H segments are under
100 bytes, matching the size properties Figure 4 reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Tuple


from repro.csd.schema import Column, ColumnType, TableSchema
from repro.csd.sql import extract_segment
from repro.sim.rng import make_rng

I64 = ColumnType.INT64
F64 = ColumnType.FLOAT64
S = ColumnType.STR


@dataclass(frozen=True)
class CorpusQuery:
    """One Figure-4 workload."""

    name: str
    full_sql: str
    schema: TableSchema
    make_rows: Callable[[int, int], List[Tuple[object, ...]]]

    @property
    def segment(self) -> str:
        """The table+predicate segment (Figure 4, right bar)."""
        return extract_segment(self.full_sql)

    @property
    def full_len(self) -> int:
        return len(self.full_sql.encode("utf-8"))

    @property
    def segment_len(self) -> int:
        return len(self.segment.encode("utf-8"))


# ---------------------------------------------------------------------------
# row generators
# ---------------------------------------------------------------------------
def _vpic_rows(n: int, seed: int) -> List[Tuple[object, ...]]:
    rng = make_rng(seed, "vpic")
    return [(int(i), float(e), float(ux), float(uy), float(uz))
            for i, e, ux, uy, uz in zip(
                range(n),
                rng.exponential(1.0, n),          # particle energy
                rng.normal(0, 0.4, n), rng.normal(0, 0.4, n),
                rng.normal(0, 0.4, n))]


def _laghos_rows(n: int, seed: int) -> List[Tuple[object, ...]]:
    rng = make_rng(seed, "laghos")
    return [(int(i), float(e), float(rho), float(v))
            for i, e, rho, v in zip(
                range(n),
                rng.gamma(2.0, 300.0, n),         # internal energy
                rng.uniform(0.5, 2.5, n),         # density
                rng.normal(0, 1.0, n))]


def _asteroid_rows(n: int, seed: int) -> List[Tuple[object, ...]]:
    rng = make_rng(seed, "asteroid")
    return [(int(i), float(v02), float(prs), float(tev))
            for i, v02, prs, tev in zip(
                range(n),
                rng.beta(0.5, 2.0, n),            # water volume fraction
                rng.lognormal(18.0, 2.0, n),      # pressure (Pa)
                rng.exponential(0.4, n))]         # temperature (eV)


_TPCH_FLAGS = ("A", "N", "R")
_TPCH_STATUS = ("O", "F")
_TPCH_DATES = tuple(f"19{yy:02d}-{mm:02d}-{dd:02d}"
                    for yy in (94, 95, 96, 97, 98)
                    for mm in (1, 4, 7, 9, 12) for dd in (2, 15, 28))
_TPCH_REGIONS = ("AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST")


def _lineitem_rows(n: int, seed: int) -> List[Tuple[object, ...]]:
    rng = make_rng(seed, "lineitem")
    return [(int(k), int(q), float(p), float(d),
             str(_TPCH_FLAGS[f]), str(_TPCH_STATUS[s]), str(_TPCH_DATES[t]))
            for k, q, p, d, f, s, t in zip(
                range(n),
                rng.integers(1, 51, n),
                rng.uniform(900.0, 105000.0, n),
                rng.uniform(0.0, 0.11, n),
                rng.integers(0, len(_TPCH_FLAGS), n),
                rng.integers(0, len(_TPCH_STATUS), n),
                rng.integers(0, len(_TPCH_DATES), n))]


def _region_rows(n: int, seed: int) -> List[Tuple[object, ...]]:
    # TPC-H region is a 5-row dimension table; n is ignored by design.
    del n, seed
    return [(i, name, f"{name.lower()} region comment")
            for i, name in enumerate(_TPCH_REGIONS)]


# ---------------------------------------------------------------------------
# the corpus
# ---------------------------------------------------------------------------
def _schema(name: str, *cols: Tuple[str, ColumnType]) -> TableSchema:
    return TableSchema(name, tuple(Column(n, t) for n, t in cols))


VPIC = CorpusQuery(
    name="vpic",
    full_sql="SELECT * FROM particles WHERE energy > 1.2",
    schema=_schema("particles", ("pid", I64), ("energy", F64),
                   ("ux", F64), ("uy", F64), ("uz", F64)),
    make_rows=_vpic_rows,
)

LAGHOS = CorpusQuery(
    name="laghos",
    full_sql="SELECT * FROM zones WHERE e > 662.0 AND rho < 2.0",
    schema=_schema("zones", ("zid", I64), ("e", F64), ("rho", F64),
                   ("v", F64)),
    make_rows=_laghos_rows,
)

ASTEROID = CorpusQuery(
    name="asteroid",
    full_sql="SELECT * FROM cells WHERE v02 > 0.4 AND prs > 300000000.0",
    schema=_schema("cells", ("cid", I64), ("v02", F64), ("prs", F64),
                   ("tev", F64)),
    make_rows=_asteroid_rows,
)

TPCH_Q1 = CorpusQuery(
    name="tpch_q1",
    full_sql=("SELECT l_returnflag, l_linestatus, l_quantity, "
              "l_extendedprice, l_discount FROM lineitem "
              "WHERE l_shipdate <= DATE '1998-09-02' "
              "ORDER BY l_returnflag, l_linestatus"),
    schema=_schema("lineitem", ("l_orderkey", I64), ("l_quantity", I64),
                   ("l_extendedprice", F64), ("l_discount", F64),
                   ("l_returnflag", S), ("l_linestatus", S),
                   ("l_shipdate", S)),
    make_rows=_lineitem_rows,
)

TPCH_Q2 = CorpusQuery(
    name="tpch_q2",
    full_sql=("SELECT r_regionkey, r_name FROM region "
              "WHERE r_name = 'EUROPE' ORDER BY r_regionkey"),
    schema=_schema("region", ("r_regionkey", I64), ("r_name", S),
                   ("r_comment", S)),
    make_rows=_region_rows,
)

#: Figure 4's workloads, left-to-right.
CORPUS = (VPIC, LAGHOS, ASTEROID, TPCH_Q1, TPCH_Q2)


def by_name(name: str) -> CorpusQuery:
    for query in CORPUS:
        if query.name == name:
            return query
    raise KeyError(f"no corpus query named {name!r}")
