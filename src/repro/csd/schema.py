"""Table schemas for the computational-storage device.

The key observation the paper leans on (§2.2.2) is that *the SSD already
stores the table schema*, so a pushdown task only needs a table identifier
and a predicate.  This module defines the schema objects the device keeps
and the row wire format used when the host loads data into the device.

Row wire format: per column — INT64 little-endian 8 B; FLOAT64 IEEE 8 B;
STR as u16 length + UTF-8 bytes.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass
from typing import List, Sequence, Tuple


class ColumnType(enum.Enum):
    INT64 = "int64"
    FLOAT64 = "float64"
    STR = "str"


@dataclass(frozen=True)
class Column:
    name: str
    ctype: ColumnType

    def __post_init__(self) -> None:
        if not self.name or not self.name.replace("_", "").isalnum():
            raise ValueError(f"bad column name {self.name!r}")


@dataclass(frozen=True)
class TableSchema:
    name: str
    columns: Tuple[Column, ...]

    def __post_init__(self) -> None:
        if not self.columns:
            raise ValueError("a table needs at least one column")
        names = [c.name for c in self.columns]
        if len(set(names)) != len(names):
            raise ValueError("duplicate column names")

    def column_index(self, name: str) -> int:
        for i, col in enumerate(self.columns):
            if col.name == name:
                return i
        raise KeyError(f"table {self.name!r} has no column {name!r}")

    def has_column(self, name: str) -> bool:
        return any(c.name == name for c in self.columns)

    # ------------------------------------------------------------------
    # row codec
    # ------------------------------------------------------------------
    def validate_row(self, row: Sequence[object]) -> None:
        if len(row) != len(self.columns):
            raise ValueError(
                f"row has {len(row)} values, schema has {len(self.columns)}")
        for value, col in zip(row, self.columns):
            if col.ctype is ColumnType.INT64 and not isinstance(value, int):
                raise TypeError(f"column {col.name}: expected int")
            if col.ctype is ColumnType.FLOAT64 and not isinstance(value, (int, float)):
                raise TypeError(f"column {col.name}: expected float")
            if col.ctype is ColumnType.STR and not isinstance(value, str):
                raise TypeError(f"column {col.name}: expected str")

    def pack_row(self, row: Sequence[object]) -> bytes:
        self.validate_row(row)
        out = bytearray()
        for value, col in zip(row, self.columns):
            if col.ctype is ColumnType.INT64:
                out += struct.pack("<q", value)
            elif col.ctype is ColumnType.FLOAT64:
                out += struct.pack("<d", float(value))
            else:
                raw = value.encode("utf-8")
                if len(raw) > 0xFFFF:
                    raise ValueError("string value too long")
                out += struct.pack("<H", len(raw)) + raw
        return bytes(out)

    def unpack_rows(self, raw: bytes) -> List[Tuple[object, ...]]:
        """Decode a concatenation of packed rows."""
        rows: List[Tuple[object, ...]] = []
        pos = 0
        while pos < len(raw):
            values: List[object] = []
            for col in self.columns:
                if col.ctype is ColumnType.INT64:
                    (v,) = struct.unpack_from("<q", raw, pos)
                    pos += 8
                elif col.ctype is ColumnType.FLOAT64:
                    (v,) = struct.unpack_from("<d", raw, pos)
                    pos += 8
                else:
                    (n,) = struct.unpack_from("<H", raw, pos)
                    pos += 2
                    v = raw[pos:pos + n].decode("utf-8")
                    pos += n
                values.append(v)
            rows.append(tuple(values))
        return rows

    # ------------------------------------------------------------------
    # schema codec (for the CSD create-table command)
    # ------------------------------------------------------------------
    def pack(self) -> bytes:
        parts = [self.name]
        for col in self.columns:
            parts.append(f"{col.name}:{col.ctype.value}")
        return ";".join(parts).encode("utf-8")

    @classmethod
    def unpack(cls, raw: bytes) -> "TableSchema":
        parts = raw.decode("utf-8").split(";")
        if len(parts) < 2:
            raise ValueError("schema needs a table name and one column")
        columns = []
        for spec in parts[1:]:
            name, _, ctype = spec.partition(":")
            columns.append(Column(name, ColumnType(ctype)))
        return cls(parts[0], tuple(columns))
