"""In-device filter execution.

Runs a parsed predicate over an on-device table and materialises the
matching rows into a result workspace (the "workspace for filter
processing in CSDs" the paper names as a ByteExpress landing buffer,
§3.3.1).  Per-row evaluation time is charged to the device clock so
high-selectivity filters show their device-side cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.csd.schema import TableSchema
from repro.csd.sql import Expr, SqlError, evaluate, predicate_columns
from repro.csd.table import DeviceTable
from repro.sim.clock import SimClock

#: Device CPU cost to evaluate one predicate over one row.
ROW_EVAL_NS = 40.0


@dataclass
class FilterResult:
    """Outcome of one filter task."""

    table: str
    rows: List[Tuple[object, ...]]
    rows_scanned: int
    schema: TableSchema

    @property
    def selectivity(self) -> float:
        if self.rows_scanned == 0:
            return 0.0
        return len(self.rows) / self.rows_scanned

    def pack(self) -> bytes:
        """Wire form for returning results to the host."""
        out = bytearray()
        for row in self.rows:
            out += self.schema.pack_row(row)
        return bytes(out)


class FilterExecutor:
    """Evaluates predicates over device tables."""

    def __init__(self, clock: SimClock, row_eval_ns: float = ROW_EVAL_NS) -> None:
        self.clock = clock
        self.row_eval_ns = row_eval_ns
        self.tasks_executed = 0
        self.rows_scanned = 0

    def validate(self, table: DeviceTable, predicate: Optional[Expr]) -> None:
        """Check every referenced column exists before running the scan."""
        if predicate is None:
            return
        for name in predicate_columns(predicate):
            if not table.schema.has_column(name):
                raise SqlError(
                    f"predicate references unknown column {name!r} "
                    f"of table {table.schema.name!r}")

    def execute(self, table: DeviceTable,
                predicate: Optional[Expr]) -> FilterResult:
        """Scan + filter; charges NAND reads and per-row CPU time."""
        self.validate(table, predicate)
        names = [c.name for c in table.schema.columns]
        matches: List[Tuple[object, ...]] = []
        scanned = 0
        for row in table.scan_rows():
            scanned += 1
            if predicate is None or evaluate(predicate, dict(zip(names, row))):
                matches.append(row)
        self.clock.advance(self.row_eval_ns * scanned)
        self.tasks_executed += 1
        self.rows_scanned += scanned
        return FilterResult(table=table.schema.name, rows=matches,
                            rows_scanned=scanned, schema=table.schema)
