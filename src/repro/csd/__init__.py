"""Computational-storage (CSD) substrate: schemas, tables, SQL predicate
parsing, in-device filtering, the Figure-4 query corpus, and the pushdown
client/personality pair."""

from repro.csd.filter import FilterExecutor, FilterResult
from repro.csd.pushdown import (
    CsdClient,
    CsdPersonality,
    PushdownTask,
    parse_task_message,
)
from repro.csd.queries import (
    ASTEROID,
    CORPUS,
    LAGHOS,
    TPCH_Q1,
    TPCH_Q2,
    VPIC,
    CorpusQuery,
    by_name,
)
from repro.csd.schema import Column, ColumnType, TableSchema
from repro.csd.sql import (
    And,
    ColumnRef,
    Comparison,
    Literal,
    Not,
    Or,
    SelectQuery,
    SqlError,
    evaluate,
    extract_segment,
    parse_predicate,
    parse_query,
    predicate_columns,
)
from repro.csd.table import DeviceTable, TableError, TableStore

__all__ = [
    "Column",
    "ColumnType",
    "TableSchema",
    "DeviceTable",
    "TableStore",
    "TableError",
    "SqlError",
    "parse_query",
    "parse_predicate",
    "extract_segment",
    "evaluate",
    "predicate_columns",
    "SelectQuery",
    "Comparison",
    "And",
    "Or",
    "Not",
    "ColumnRef",
    "Literal",
    "FilterExecutor",
    "FilterResult",
    "CsdClient",
    "CsdPersonality",
    "PushdownTask",
    "parse_task_message",
    "CorpusQuery",
    "CORPUS",
    "VPIC",
    "LAGHOS",
    "ASTEROID",
    "TPCH_Q1",
    "TPCH_Q2",
    "by_name",
]
