"""Simulation configuration: link parameters and calibrated timing constants.

All magic numbers live here.  Defaults are calibrated against the paper's own
measurements on the Cosmos+ OpenSSD testbed (PCIe Gen2 x8, Zynq-7000):

* Table 1 gives the host-side SQ submit and device-side SQ fetch costs for
  PRP and for ByteExpress at 64/128/256 B, from which the per-chunk constants
  (~30 ns submit, ~400 ns fetch) are stated explicitly in §4.2.
* Figure 1(b) gives the PRP staircase latencies used to calibrate the
  page-DMA path.
* NAND timings follow the Cosmos+ platform's MLC flash characteristics and
  only matter for the Figure 6 (KV-SSD, NAND-on) experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional


#: NVMe submission-queue entry size; also the ByteExpress chunk size (bytes).
SQE_SIZE = 64
#: NVMe completion-queue entry size (bytes).
CQE_SIZE = 16
#: Host memory page size used for PRP transfers (bytes).
PAGE_SIZE = 4096

#: Doorbell publication modes (see :attr:`SimConfig.doorbell_mode`).
#: ``DOORBELL_MMIO`` happens to share a spelling with the ``mmio``
#: transfer method but names an orthogonal concept: how tail/head
#: updates reach the device, not how payloads do.
DOORBELL_MMIO = "mmio"  # verify: ignore[VER106]
DOORBELL_SHADOW = "shadow"


@dataclass(frozen=True)
class LinkConfig:
    """PCIe link geometry and framing parameters.

    The default matches the paper's testbed: Gen2 (5 GT/s per lane, 8b/10b
    encoding) with 8 lanes, Max_Payload_Size 256 B and Max_Read_Request_Size
    512 B, which are the Zynq-7000 endpoint defaults.
    """

    generation: int = 2
    lanes: int = 8
    max_payload_size: int = 256      # MPS: largest TLP data payload (bytes)
    max_read_request: int = 512      # MRRS: largest single MRd request (bytes)
    tlp_header_bytes: int = 24       # framing(2)+seq(2)+3DW header(12)+ECRC/LCRC(8)
    dllp_bytes: int = 8              # ACK/FC DLLP, amortised one per TLP

    #: Raw per-lane gigatransfers/s by generation.
    _GTS = {1: 2.5, 2: 5.0, 3: 8.0, 4: 16.0, 5: 32.0}
    #: Encoding efficiency: 8b/10b for Gen1/2, 128b/130b for Gen3+.
    _ENC = {1: 0.8, 2: 0.8, 3: 128 / 130, 4: 128 / 130, 5: 128 / 130}

    @property
    def bytes_per_ns(self) -> float:
        """Effective unidirectional link bandwidth in bytes per nanosecond."""
        gts = self._GTS[self.generation]
        eff = self._ENC[self.generation]
        # GT/s * encoding = Gbit/s per lane; /8 = GB/s = bytes/ns.
        return gts * eff * self.lanes / 8.0

    def with_generation(self, generation: int) -> "LinkConfig":
        """A copy of this config on a different PCIe generation (§5 variants)."""
        return replace(self, generation=generation)


@dataclass(frozen=True)
class TimingModel:
    """Calibrated per-phase protocol costs (nanoseconds).

    Names mirror the stages in Figure 3 of the paper.  These are *logic*
    costs; wire time for each TLP is computed separately by the link model
    and added on top.
    """

    # --- host / driver side ------------------------------------------------
    #: Build + insert one PRP-style SQE into the SQ (Table 1: ~60 ns).
    sqe_submit_ns: float = 60.0
    #: Insert one 64 B inline payload chunk into the SQ (§4.2: ~30 ns).
    chunk_submit_ns: float = 30.0
    #: CPU cost of one doorbell MMIO write (uncached, posted).
    doorbell_write_ns: float = 100.0
    #: Host-side completion handling (CQE poll + cid lookup).
    completion_handle_ns: float = 150.0
    #: Passthrough ioctl entry/exit overhead per command.
    passthrough_ns: float = 250.0

    # --- link-level latencies ----------------------------------------------
    #: One-way propagation + PHY/DLL pipeline latency per TLP.
    link_propagation_ns: float = 150.0
    #: Host DRAM access latency seen by a device-initiated MRd.
    host_mem_read_ns: float = 120.0

    # --- device / controller side -----------------------------------------
    #: Doorbell poll detection latency (round-robin scan slot).
    doorbell_poll_ns: float = 200.0
    #: Controller command fetch-to-dispatch path, wire time included
    #: (Table 1: doorbell_poll_ns + this = ~2400 ns for the PRP fetch path).
    cmd_fetch_logic_ns: float = 2200.0
    #: Fetch one inline 64 B SQ entry: DMA issue + receive + copy-out
    #: (§4.2: ~400 ns per entry, includes its wire time share; we subtract
    #: the modelled wire time when charging so totals match Table 1).
    chunk_fetch_ns: float = 400.0
    #: Set up one PRP data DMA transaction (descriptor walk + engine program).
    #: Calibrated so the PRP transfer path (setup + 4 KB wire + DRAM copy)
    #: sits ~40 % above ByteExpress at 32 B, matching Figure 5.
    prp_dma_setup_ns: float = 800.0
    #: Parse one SGL descriptor and program the DMA engine.
    sgl_parse_ns: float = 500.0
    #: Write one CQE back + raise MSI-X.
    completion_post_ns: float = 350.0
    #: Decode one SQ entry that is already on-die (burst-prefetched):
    #: no DMA round trip, just copy-out + parse.
    burst_sqe_logic_ns: float = 150.0
    #: Append one CQE to the coalescing buffer (device DRAM write).
    cqe_coalesce_ns: float = 50.0
    #: Host store to the shadow-doorbell page (cacheable write + sfence)
    #: — the cost MMIO doorbells are traded against.
    shadow_db_write_ns: float = 15.0
    #: Device DMA read of the shadow tail/head array (one small MRd).
    shadow_sync_ns: float = 500.0
    #: Device DMA write of the eventidx/park record at idle transition.
    shadow_park_ns: float = 250.0
    #: Per-page device-DRAM copy-in cost after DMA receive.
    dram_copy_per_kb_ns: float = 90.0

    # --- BandSlim comparator (NVMe-CMD-based transfer, §3.2) ---------------
    #: Host software layer per payload: fragment planning + ordering state.
    bandslim_task_host_ns: float = 100.0
    #: Host cost per fragment command built (beyond the plain SQE submit).
    bandslim_frag_host_ns: float = 50.0
    #: Device firmware per fragment: vendor-opcode parse + reassembly append.
    bandslim_frag_device_ns: float = 200.0
    #: Device per-payload reassembly finalisation.
    bandslim_task_device_ns: float = 100.0

    # --- MMIO byte-interface comparator (2B-SSD/ByteFS style) --------------
    #: Host uncached write-combined store of one 64 B cacheline to BAR.
    mmio_cacheline_ns: float = 120.0
    #: Device-side latch + buffer append per cacheline.
    mmio_latch_ns: float = 40.0

    # --- coherent-link PIO comparator (CXL/coherent-interconnect style) ----
    #: Host coherent store of one 64 B cacheline into the device buffer.
    #: Cheaper than the uncached write-combined MMIO store: coherent
    #: writes pipeline through the cache hierarchy (arXiv 2409.08141).
    pio_store_ns: float = 40.0
    #: Device-side latch per cacheline on the coherent path.
    pio_latch_ns: float = 20.0
    #: Host coherent poll of the device status word — a cacheline read
    #: serviced by the coherence protocol, far below an uncached MMIO
    #: round trip but still a link traversal.
    pio_poll_ns: float = 80.0

    # --- NAND back-end (Figure 6 experiments only) -------------------------
    nand_page_program_ns: float = 350_000.0
    nand_page_read_ns: float = 60_000.0
    nand_channels: int = 8
    nand_ways: int = 8
    nand_page_bytes: int = 16384

    # --- firmware work per request class ------------------------------------
    #: KV engine work per PUT (log append + LSM insert + bookkeeping) on
    #: the device CPU — the dominant per-op cost once NAND pipelines
    #: (calibrated to OpenSSD-class KV-SSD throughputs of a few 10 Kops/s).
    kv_put_logic_ns: float = 20_000.0
    #: KV engine work per GET (index lookup + value fetch management).
    kv_get_logic_ns: float = 15_000.0
    #: Filter executor setup per pushdown task.
    csd_task_setup_ns: float = 2500.0


@dataclass
class SimConfig:
    """Top-level simulation configuration."""

    link: LinkConfig = field(default_factory=LinkConfig)
    timing: TimingModel = field(default_factory=TimingModel)
    #: Number of host submission/completion queue pairs.
    num_io_queues: int = 4
    #: Entries per submission queue (power of two).
    sq_depth: int = 1024
    #: Entries per completion queue.
    cq_depth: int = 1024
    #: Device DRAM capacity (bytes); Cosmos+ has 1 GB.
    device_dram_bytes: int = 1 << 30
    #: Whether NAND I/O is performed (Figures 1(b)/5 disable it).
    nand_enabled: bool = True
    #: Minimum PRP data-fetch unit (paper §5: 4 KB standard; some
    #: configurations support 512 B logical blocks).  Must divide 4096.
    lba_bytes: int = 4096
    #: Per-phase timing dispersion (log-normal sigma); 0 = deterministic.
    #: The Figure-6 benchmarks set ~0.05 to reproduce the paper's
    #: 1st–99th percentile error bars.
    timing_jitter: float = 0.0
    #: Deterministic seed for workload generators.
    seed: int = 0x5EED
    #: Tagged-mode reassembly capacity: payloads the controller tracks
    #: concurrently (paper §3.3.2 SRAM budget).  Must cover the engine's
    #: worst case of ``num_io_queues * per-queue QD`` in-flight writes.
    reassembly_in_flight: int = 256
    #: Parallel command-fetch/DMA engines in the controller.  The engine's
    #: completion reactor services up to this many SQs concurrently; more
    #: host queues than lanes saturate the fetch path (the scaling
    #: ablation's knee).  The Cosmos+-class controller models 4.
    fetch_lanes: int = 4
    #: Doorbell publication mechanism: ``"mmio"`` (stock NVMe: one posted
    #: 4 B BAR write per tail/head update) or ``"shadow"`` (Doorbell
    #: Buffer Config: tails/heads go to a host-memory shadow page the
    #: controller reads via DMA; a BAR write happens only when the
    #: device-published eventidx/park record says the device went idle).
    doorbell_mode: str = DOORBELL_MMIO
    #: Maximum contiguous SQ entries the controller fetches in one DMA
    #: read when a doorbell advances the tail by more than one (1 =
    #: stock per-SQE fetch).  Burst fetch applies to queue-local mode.
    burst_limit: int = 1
    #: CQEs the controller buffers before posting them with one DMA
    #: write and one aggregated MSI-X (1 = stock per-CQE posting).
    #: Buffered CQEs always flush when the device goes idle, which
    #: bounds the added completion delay in this poll-driven model.
    cq_coalesce: int = 1
    #: How long the controller promises to keep polling the shadow page
    #: after going idle before the host must fall back to a BAR wake.
    shadow_idle_ns: float = 100_000.0
    # --- multi-tenant QoS defaults (repro.virt) ----------------------------
    #: WRR weight a tenant gets when its spec does not set one.  Weight 0
    #: parks a queue (never serviced); the admin queue is never governed.
    qos_default_weight: int = 1
    #: Default ops/sec budget per tenant (token bucket on the sim clock);
    #: ``None`` = unlimited.
    qos_default_ops_per_sec: Optional[float] = None
    #: Default bytes/sec budget per tenant (SQE + inline chunks or PRP
    #: data length); ``None`` = unlimited.
    qos_default_bytes_per_sec: Optional[float] = None
    #: Token-bucket burst capacities (how far an idle tenant may run
    #: ahead of its sustained rate).  Must be at least 1.
    qos_burst_ops: int = 32
    qos_burst_bytes: int = 64 * 1024

    def __post_init__(self) -> None:
        if self.doorbell_mode not in (DOORBELL_MMIO, DOORBELL_SHADOW):
            raise ValueError(
                f"doorbell_mode must be 'mmio' or 'shadow', "
                f"got {self.doorbell_mode!r}")
        if self.burst_limit < 1:
            raise ValueError("burst_limit must be at least 1")
        if self.cq_coalesce < 1:
            raise ValueError("cq_coalesce must be at least 1")
        if self.qos_default_weight < 0:
            raise ValueError("qos_default_weight must be >= 0")
        for name in ("qos_default_ops_per_sec", "qos_default_bytes_per_sec"):
            rate = getattr(self, name)
            if rate is not None and rate <= 0:
                raise ValueError(f"{name} must be positive when set")
        if self.qos_burst_ops < 1 or self.qos_burst_bytes < 1:
            raise ValueError("qos burst capacities must be at least 1")

    def nand_off(self) -> "SimConfig":
        """Copy of this config with NAND I/O disabled (latency-only runs)."""
        return replace(self, nand_enabled=False)
