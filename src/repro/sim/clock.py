"""Simulated nanosecond clock.

Every component in the simulated stack shares a :class:`SimClock`.  The model
is a *cost-accounting* simulation: operations advance the clock by their
modelled duration rather than being scheduled on an event queue.  This is
sufficient for the paper's observables (per-operation latency, aggregate PCIe
traffic, pipelined throughput), and keeps single-operation traces exactly
decomposable into protocol phases.

The clock also supports *spans*: named, nested intervals used to attribute
time to protocol phases (driver submit, doorbell, command fetch, data
transfer, completion).  Benchmarks use spans to regenerate Table 1 of the
paper, which reports per-phase overheads.
"""

from __future__ import annotations

import math
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple


@dataclass
class Span:
    """A named interval of simulated time."""

    name: str
    start_ns: float
    end_ns: float

    @property
    def duration_ns(self) -> float:
        return self.end_ns - self.start_ns


class SimClock:
    """Monotonic simulated clock measured in nanoseconds.

    >>> clk = SimClock()
    >>> clk.advance(100)
    >>> clk.now
    100.0

    *jitter* adds a seeded log-normal perturbation to every ``advance``
    (e.g. ``jitter=0.05`` for ~5 % dispersion).  The default is exactly
    zero — tests and Table-1 calibration rely on determinism — but the
    Figure-6 benchmarks enable it to reproduce the paper's 1st–99th
    percentile error bars, which on real hardware come from exactly this
    kind of per-phase variance.
    """

    def __init__(self, start_ns: float = 0.0, jitter: float = 0.0,
                 seed: int = 0x7157) -> None:
        if jitter < 0:
            raise ValueError("jitter must be non-negative")
        self._now = float(start_ns)
        self._spans: List[Span] = []
        self._open: List[Tuple[str, float]] = []
        self._concurrency: List[float] = []
        self.jitter = jitter
        self._rng_state = seed & 0xFFFFFFFFFFFFFFFF or 1

    def _next_uniform(self) -> float:
        """xorshift64*: cheap, seeded, dependency-free uniform in (0,1)."""
        x = self._rng_state
        x ^= (x >> 12) & 0xFFFFFFFFFFFFFFFF
        x ^= (x << 25) & 0xFFFFFFFFFFFFFFFF
        x ^= (x >> 27) & 0xFFFFFFFFFFFFFFFF
        self._rng_state = x & 0xFFFFFFFFFFFFFFFF or 1
        return ((x * 0x2545F4914F6CDD1D) & 0xFFFFFFFFFFFFFFFF) / 2**64

    @property
    def now(self) -> float:
        """Current simulated time in nanoseconds."""
        return self._now

    def advance(self, duration_ns: float) -> None:
        """Move the clock forward; negative durations are rejected."""
        if duration_ns < 0:
            raise ValueError(f"cannot advance clock by {duration_ns} ns")
        if self.jitter and duration_ns:
            # Log-normal-ish factor around 1: exp(j * (u1+u2+u3-1.5)) uses
            # an Irwin-Hall approximation of a Gaussian — seeded, fast.
            gaussian = (self._next_uniform() + self._next_uniform()
                        + self._next_uniform() - 1.5) * 2.0
            duration_ns *= math.exp(self.jitter * gaussian)
        if self._concurrency:
            duration_ns /= self._concurrency[-1]
        self._now += duration_ns

    @contextmanager
    def concurrent(self, lanes: float) -> Iterator[None]:
        """Scale advances inside the block by ``1/lanes``.

        Models *lanes* identical units progressing in parallel under
        processor sharing: when the firmware loop services N queues with
        N parallel fetch/DMA engines, each unit of per-command work only
        occupies ``1/N`` of wall-clock time.  The cost-accounting clock
        is otherwise strictly serial, which would make multi-queue
        service no faster than single-queue — this is the one place the
        model expresses hardware concurrency.

        Nested regions are allowed; the innermost factor wins (the engine
        never nests them in practice).
        """
        if lanes < 1:
            raise ValueError(f"concurrency must be >= 1, got {lanes}")
        self._concurrency.append(float(lanes))
        try:
            yield
        finally:
            self._concurrency.pop()

    def advance_to(self, t_ns: float) -> None:
        """Jump forward to an absolute time; no-op if already past it."""
        if t_ns > self._now:
            self._now = t_ns

    @contextmanager
    def span(self, name: str) -> Iterator[None]:
        """Record the simulated time spent inside the block under *name*."""
        self._open.append((name, self._now))
        try:
            yield
        finally:
            opened_name, start = self._open.pop()
            self._spans.append(Span(opened_name, start, self._now))

    def spans(self, name: str = None) -> List[Span]:
        """All recorded spans, optionally filtered by name."""
        if name is None:
            return list(self._spans)
        return [s for s in self._spans if s.name == name]

    def span_totals(self) -> Dict[str, float]:
        """Total duration per span name."""
        totals: Dict[str, float] = {}
        for s in self._spans:
            totals[s.name] = totals.get(s.name, 0.0) + s.duration_ns
        return totals

    def reset_spans(self) -> None:
        self._spans.clear()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SimClock(now={self._now:.1f}ns, spans={len(self._spans)})"
