"""Simulated nanosecond clock.

Every component in the simulated stack shares a :class:`SimClock`.  The model
is a *cost-accounting* simulation: operations advance the clock by their
modelled duration rather than being scheduled on an event queue.  This is
sufficient for the paper's observables (per-operation latency, aggregate PCIe
traffic, pipelined throughput), and keeps single-operation traces exactly
decomposable into protocol phases.

The clock also supports *spans*: named, nested intervals used to attribute
time to protocol phases (driver submit, doorbell, command fetch, data
transfer, completion).  Benchmarks use spans to regenerate Table 1 of the
paper, which reports per-phase overheads.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple


@dataclass(slots=True)
class Span:
    """A named interval of simulated time."""

    name: str
    start_ns: float
    end_ns: float

    @property
    def duration_ns(self) -> float:
        return self.end_ns - self.start_ns


class _SpanScope:
    """Class-based context manager for :meth:`SimClock.span`.

    The generator-based ``@contextmanager`` costs several function calls
    and a generator frame per entry; spans sit on every hot-loop protocol
    action, so this is one of the highest-traffic allocations in the
    simulator.
    """

    __slots__ = ("_clock", "_name", "_start")

    def __init__(self, clock: "SimClock", name: str) -> None:
        self._clock = clock
        self._name = name

    def __enter__(self) -> None:
        self._start = self._clock.now

    def __exit__(self, *exc) -> None:
        clock = self._clock
        clock._spans.append((self._name, self._start, clock.now))


class _ConcurrencyScope:
    """Class-based context manager for :meth:`SimClock.concurrent`."""

    __slots__ = ("_clock", "_lanes")

    def __init__(self, clock: "SimClock", lanes: float) -> None:
        if lanes < 1:
            raise ValueError(f"concurrency must be >= 1, got {lanes}")
        self._clock = clock
        self._lanes = float(lanes)

    def __enter__(self) -> None:
        self._clock._concurrency.append(self._lanes)

    def __exit__(self, *exc) -> None:
        self._clock._concurrency.pop()


class SimClock:
    """Monotonic simulated clock measured in nanoseconds.

    >>> clk = SimClock()
    >>> clk.advance(100)
    >>> clk.now
    100.0

    *jitter* adds a seeded log-normal perturbation to every ``advance``
    (e.g. ``jitter=0.05`` for ~5 % dispersion).  The default is exactly
    zero — tests and Table-1 calibration rely on determinism — but the
    Figure-6 benchmarks enable it to reproduce the paper's 1st–99th
    percentile error bars, which on real hardware come from exactly this
    kind of per-phase variance.

    ``now`` is a plain attribute (read ~10 times per simulated I/O; a
    property descriptor call was measurable).  Treat it as read-only:
    only ``advance``/``advance_repeat``/``advance_to`` may move the
    clock, and only forward.
    """

    def __init__(self, start_ns: float = 0.0, jitter: float = 0.0,
                 seed: int = 0x7157) -> None:
        if jitter < 0:
            raise ValueError("jitter must be non-negative")
        #: Current simulated time in nanoseconds (read-only by convention).
        self.now = float(start_ns)
        #: Completed spans as (name, start_ns, end_ns) tuples — tuples,
        #: not :class:`Span` objects, because span close-out sits on the
        #: hot loop; :meth:`spans` materialises Span objects on demand.
        self._spans: List[Tuple[str, float, float]] = []
        self._concurrency: List[float] = []
        self.jitter = jitter
        self._rng_state = seed & 0xFFFFFFFFFFFFFFFF or 1

    def _next_uniform(self) -> float:
        """xorshift64*: cheap, seeded, dependency-free uniform in (0,1)."""
        x = self._rng_state
        x ^= (x >> 12) & 0xFFFFFFFFFFFFFFFF
        x ^= (x << 25) & 0xFFFFFFFFFFFFFFFF
        x ^= (x >> 27) & 0xFFFFFFFFFFFFFFFF
        self._rng_state = x & 0xFFFFFFFFFFFFFFFF or 1
        return ((x * 0x2545F4914F6CDD1D) & 0xFFFFFFFFFFFFFFFF) / 2**64

    def advance(self, duration_ns: float) -> None:
        """Move the clock forward; negative durations are rejected."""
        if duration_ns < 0:
            raise ValueError(f"cannot advance clock by {duration_ns} ns")
        if self.jitter and duration_ns:
            # Log-normal-ish factor around 1: exp(j * (u1+u2+u3-1.5)) uses
            # an Irwin-Hall approximation of a Gaussian — seeded, fast.
            gaussian = (self._next_uniform() + self._next_uniform()
                        + self._next_uniform() - 1.5) * 2.0
            duration_ns *= math.exp(self.jitter * gaussian)
        if self._concurrency:
            duration_ns /= self._concurrency[-1]
        self.now += duration_ns

    def advance_repeat(self, duration_ns: float, count: int) -> None:
        """Advance by *duration_ns*, *count* times.

        Bit-identical to a loop of :meth:`advance` calls: the same
        per-step floating-point additions happen in the same order (a
        single ``advance(count * duration_ns)`` would change low-order
        bits), and with jitter enabled each step still draws its own
        perturbation so seeded RNG streams stay aligned.
        """
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        if self.jitter:
            for _ in range(count):
                self.advance(duration_ns)
            return
        if duration_ns < 0:
            raise ValueError(f"cannot advance clock by {duration_ns} ns")
        step = (duration_ns / self._concurrency[-1] if self._concurrency
                else duration_ns)
        now = self.now
        for _ in range(count):
            now += step
        self.now = now

    def concurrent(self, lanes: float) -> "_ConcurrencyScope":
        """Scale advances inside the block by ``1/lanes``.

        Models *lanes* identical units progressing in parallel under
        processor sharing: when the firmware loop services N queues with
        N parallel fetch/DMA engines, each unit of per-command work only
        occupies ``1/N`` of wall-clock time.  The cost-accounting clock
        is otherwise strictly serial, which would make multi-queue
        service no faster than single-queue — this is the one place the
        model expresses hardware concurrency.

        Nested regions are allowed; the innermost factor wins (the engine
        never nests them in practice).
        """
        return _ConcurrencyScope(self, lanes)

    def advance_to(self, t_ns: float) -> None:
        """Jump forward to an absolute time; no-op if already past it."""
        if t_ns > self.now:
            self.now = t_ns

    def span(self, name: str) -> "_SpanScope":
        """Record the simulated time spent inside the block under *name*."""
        return _SpanScope(self, name)

    def span_end(self, name: str, start_ns: float) -> None:
        """Append a completed span directly: the fast-path twin of
        :meth:`span` for hot loops, paired with reading :attr:`now` at
        the start of the region (use ``try/finally`` to match the
        context manager's record-on-exception behaviour)."""
        self._spans.append((name, start_ns, self.now))

    def spans(self, name: str = None) -> List[Span]:
        """All recorded spans, optionally filtered by name."""
        if name is None:
            return [Span(n, s, e) for n, s, e in self._spans]
        return [Span(n, s, e) for n, s, e in self._spans if n == name]

    def span_totals(self) -> Dict[str, float]:
        """Total duration per span name."""
        totals: Dict[str, float] = {}
        for name, start, end in self._spans:
            totals[name] = totals.get(name, 0.0) + (end - start)
        return totals

    def reset_spans(self) -> None:
        self._spans.clear()

    # ------------------------------------------------------------------
    # persistence (repro.durability)
    # ------------------------------------------------------------------
    # The clock is simulation scaffolding, not modelled state — a crash
    # does not rewind time — but the crash harness snapshots it so a
    # restore-then-replay run can be compared step-for-step against an
    # uninterrupted one, jitter stream included.

    def snapshot(self) -> object:
        return {"now": self.now, "rng_state": self._rng_state,
                "jitter": self.jitter, "spans": list(self._spans)}

    def restore(self, state: object) -> None:
        assert isinstance(state, dict)
        self.now = float(state["now"])  # type: ignore[arg-type]
        self._rng_state = int(state["rng_state"])  # type: ignore[arg-type]
        self.jitter = float(state["jitter"])  # type: ignore[arg-type]
        self._spans = list(state["spans"])  # type: ignore[call-overload]

    def scrub(self) -> None:
        """No-op: simulated time never rewinds, even across a crash."""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SimClock(now={self.now:.1f}ns, spans={len(self._spans)})"
