"""Simulation foundation: clock, configuration, deterministic RNG."""

from repro.sim.clock import SimClock, Span
from repro.sim.config import (
    CQE_SIZE,
    PAGE_SIZE,
    SQE_SIZE,
    LinkConfig,
    SimConfig,
    TimingModel,
)
from repro.sim.rng import make_rng, random_bytes

__all__ = [
    "SimClock",
    "Span",
    "LinkConfig",
    "SimConfig",
    "TimingModel",
    "SQE_SIZE",
    "CQE_SIZE",
    "PAGE_SIZE",
    "make_rng",
    "random_bytes",
]
