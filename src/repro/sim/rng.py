"""Deterministic random-number helpers shared by workload generators."""

from __future__ import annotations

import numpy as np


def make_rng(seed: int, stream: str = "") -> np.random.Generator:
    """A reproducible generator, optionally namespaced by *stream*.

    Distinct streams derived from the same seed are statistically
    independent, so e.g. key and value-size generation do not correlate.
    """
    if stream:
        seq = np.random.SeedSequence([seed, _stream_id(stream)])
    else:
        seq = np.random.SeedSequence(seed)
    return np.random.default_rng(seq)


def _stream_id(stream: str) -> int:
    """Stable 63-bit id for a stream name (FNV-1a)."""
    h = 0xCBF29CE484222325
    for byte in stream.encode("utf-8"):
        h ^= byte
        h = (h * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return h & 0x7FFFFFFFFFFFFFFF


def rng_state(rng: np.random.Generator) -> dict:
    """Picklable snapshot of a generator's position in its stream."""
    return dict(rng.bit_generator.state)


def set_rng_state(rng: np.random.Generator, state: dict) -> None:
    """Rewind *rng* to a state captured by :func:`rng_state`."""
    rng.bit_generator.state = state


def random_bytes(rng: np.random.Generator, n: int) -> bytes:
    """*n* random bytes from *rng*."""
    if n == 0:
        return b""
    return rng.integers(0, 256, size=n, dtype=np.uint8).tobytes()
