"""Closed-loop serving workload: N sessions over the KV front-end.

The ROADMAP's "millions of users" shape, scaled to the simulator: every
session runs a deterministic MixGraph-style GET/PUT mix (GPD value
sizes, session-private key range) in a closed loop with a fixed fan-in,
all multiplexed onto one :class:`~repro.kvssd.KvService`.  The harness
is the serving analogue of :func:`repro.virt.workload.run_tenant_loads`
— one poll loop drives every session at once, so group commit actually
sees concurrent writers and the cache actually sees concurrent readers.

At ``fan_in=1`` the harness additionally *verifies* read-your-writes:
each session tracks its last acknowledged value per key, and every GET
completion is compared against it — a serving-level consistency check
that runs on every benchmark, not only under ``REPRO_VERIFY``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.metrics.stats import LatencySummary, summarize_latencies
from repro.sim.rng import make_rng, random_bytes
from repro.workloads.mixgraph import KvOp, sample_value_sizes

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids the
    # kvssd.service → engine → loadgen → workloads import cycle)
    from repro.kvssd.service import KvFuture, KvService, KvSession


class ServingConsistencyError(Exception):
    """A session observed a value older than its last acknowledged write."""


def session_key(session_id: int, key_id: int) -> bytes:
    """Session-private 13-byte key: sessions never share keys, so
    read-your-writes is checkable per session without cross-session
    write ordering assumptions."""
    return (b"s" + session_id.to_bytes(4, "big")
            + int(key_id).to_bytes(8, "big"))


#: Power-law exponent for key popularity: ``key = floor(K * u^skew)``.
#: MixGraph's key accesses are heavily skewed toward a hot set (Cao et
#: al., FAST '20, §5: "all_dist" follows a power law); skew 2 puts ~71 %
#: of accesses on the hottest quarter of the range, 1 is uniform.
KEY_SKEW = 2.0


def session_ops(session_id: int, ops: int, read_ratio: float,
                keys_per_session: int, seed: int,
                key_skew: float = KEY_SKEW) -> List[KvOp]:
    """The deterministic op stream of one session.

    GETs with probability *read_ratio*, PUTs otherwise; keys follow a
    power-law-skewed draw over the session's private range (hot-key
    locality, MixGraph-style); PUT value sizes follow the MixGraph GPD
    (per-session sub-seed) with deterministic contents.
    """
    if ops <= 0:
        raise ValueError("ops must be positive")
    if not 0.0 <= read_ratio <= 1.0:
        raise ValueError(f"read_ratio must be in [0, 1], got {read_ratio}")
    if keys_per_session <= 0:
        raise ValueError("keys_per_session must be positive")
    if key_skew < 1.0:
        raise ValueError(f"key_skew must be >= 1, got {key_skew}")
    op_rng = make_rng(seed, f"serving.ops.{session_id}")
    data_rng = make_rng(seed, f"serving.values.{session_id}")
    sizes = sample_value_sizes(ops, seed=seed + 7919 * session_id)
    key_ids = (op_rng.random(ops) ** key_skew
               * keys_per_session).astype(int)
    is_get = op_rng.random(ops) < read_ratio
    out: List[KvOp] = []
    for i in range(ops):
        key = session_key(session_id, int(key_ids[i]))
        if is_get[i]:
            out.append(KvOp("get", key))
        else:
            out.append(KvOp("put", key, random_bytes(data_rng,
                                                     int(sizes[i]))))
    return out


@dataclass(frozen=True)
class SessionReport:
    """One session's outcome."""

    session_id: int
    ops: int
    ok: int
    not_found: int
    errors: int
    latency: LatencySummary


@dataclass(frozen=True)
class ServingReport:
    """Aggregate outcome of one closed-loop serving run."""

    sessions: int
    ops: int
    ok: int
    not_found: int
    errors: int
    elapsed_ns: float
    #: Latency over every completed op across all sessions.
    latency: LatencySummary
    #: The worst single client's tail (the per-client p99/p99.9 the
    #: acceptance criteria ask for: aggregate tails hide a starved
    #: session, a per-client max does not).
    worst_p99_us: float
    worst_p999_us: float
    per_session: Tuple[SessionReport, ...]
    #: GET completions verified against the session's acknowledged
    #: writes (0 when fan_in > 1 disables verification).
    rw_checks: int

    @property
    def served_kiops(self) -> float:
        """Completed (ok + not-found) ops per millisecond of wall run."""
        if self.elapsed_ns <= 0:
            return 0.0
        return (self.ok + self.not_found) / self.elapsed_ns * 1e6


@dataclass
class _SessionState:
    session: KvSession
    ops: List[KvOp]
    issued: int = 0
    ok: int = 0
    not_found: int = 0
    errors: int = 0
    outstanding: List[Tuple[KvOp, KvFuture]] = field(default_factory=list)
    latencies: List[float] = field(default_factory=list)
    #: key → last acknowledged value (None records an acked delete).
    acked: Dict[bytes, Optional[bytes]] = field(default_factory=dict)

    @property
    def finished(self) -> bool:
        return self.issued >= len(self.ops) and not self.outstanding


def _issue(state: _SessionState, op: KvOp) -> KvFuture:
    if op.op == "put":
        return state.session.put(op.key, op.value)
    if op.op == "get":
        return state.session.get(op.key)
    if op.op == "delete":
        return state.session.delete(op.key)
    raise ValueError(f"unknown op {op.op!r}")


def _collect(state: _SessionState, verify: bool) -> Tuple[int, int]:
    """Harvest done futures; returns (progressed, rw_checks)."""
    progressed = 0
    rw_checks = 0
    still: List[Tuple[KvOp, KvFuture]] = []
    for op, future in state.outstanding:
        if not future.done:
            still.append((op, future))
            continue
        progressed += 1
        state.latencies.append(future.latency_ns)
        if future.ok:
            state.ok += 1
        elif future.not_found:
            state.not_found += 1
        else:
            state.errors += 1
        if op.op == "put" and future.ok:
            state.acked[op.key] = op.value
        elif op.op == "delete" and (future.ok or future.not_found):
            state.acked[op.key] = None
        elif op.op == "get" and verify:
            # verify implies fan_in == 1: this GET was the session's
            # only op in flight, so `acked` is exactly the state the
            # session has been acknowledged.
            rw_checks += 1
            expected = state.acked.get(op.key)
            if expected is None:
                if future.ok:
                    raise ServingConsistencyError(
                        f"session {state.session.session_id}: GET "
                        f"{op.key.hex()} returned {len(future.value or b'')}"
                        f" B but the session never acknowledged a write")
            elif not future.ok or future.value != expected:
                raise ServingConsistencyError(
                    f"session {state.session.session_id}: GET "
                    f"{op.key.hex()} observed "
                    f"{future.state if not future.ok else 'a stale value'}"
                    f" after an acknowledged {len(expected)} B write")
    state.outstanding = still
    return progressed, rw_checks


def run_serving(service: KvService, sessions: int, ops_per_session: int,
                read_ratio: float = 0.9, keys_per_session: int = 32,
                fan_in: int = 1, seed: int = 0x5EED, preload: bool = True,
                verify_read_your_writes: bool = True) -> ServingReport:
    """Drive *sessions* closed-loop clients to completion.

    Every session issues its deterministic op stream with at most
    *fan_in* operations outstanding; one shared poll loop advances the
    service (and with it group commit and the engine pipeline).  At
    ``fan_in == 1`` each GET is verified against the session's last
    acknowledged write unless *verify_read_your_writes* is off.

    *preload* first writes every session's full key range (untimed —
    the report's window opens after the preload drains), the standard
    serving-benchmark shape: GETs address a populated store rather
    than an empty one.
    """
    if sessions <= 0:
        raise ValueError("sessions must be positive")
    if fan_in <= 0:
        raise ValueError("fan_in must be positive")
    verify = verify_read_your_writes and fan_in == 1
    states = [
        _SessionState(
            session=service.open_session(),
            ops=session_ops(sid, ops_per_session, read_ratio,
                            keys_per_session, seed))
        for sid in range(sessions)
    ]
    clock = service.clock
    if preload:
        loaded: List[Tuple[_SessionState, bytes, bytes, "KvFuture"]] = []
        for st in states:
            sid = st.session.session_id
            data_rng = make_rng(seed, f"serving.preload.{sid}")
            sizes = sample_value_sizes(
                keys_per_session, seed=seed + 104729 * (sid + 1))
            for kid in range(keys_per_session):
                key = session_key(sid, kid)
                value = random_bytes(data_rng, int(sizes[kid]))
                loaded.append((st, key, value, st.session.put(key, value)))
        service.drain()
        for st, key, value, future in loaded:
            if future.ok:
                st.acked[key] = value
    start_ns = clock.now
    rw_checks = 0
    stall = 0
    while not all(st.finished for st in states):
        progressed = 0
        round_start_ns = clock.now
        for st in states:
            while (st.issued < len(st.ops)
                   and len(st.outstanding) < fan_in):
                op = st.ops[st.issued]
                st.outstanding.append((op, _issue(st, op)))
                st.issued += 1
                progressed += 1
        service.poll()
        for st in states:
            got, checks = _collect(st, verify)
            progressed += got
            rw_checks += checks
        if progressed == 0 and clock.now <= round_start_ns:
            stall += 1
            if stall > 100:
                raise RuntimeError("serving loop wedged (no progress and "
                                   "the clock is not advancing)")
        else:
            stall = 0
    elapsed_ns = clock.now - start_ns

    per_session: List[SessionReport] = []
    all_latencies: List[float] = []
    for st in states:
        all_latencies.extend(st.latencies)
        lat = (summarize_latencies(st.latencies) if st.latencies
               else LatencySummary.empty())
        per_session.append(SessionReport(
            session_id=st.session.session_id, ops=len(st.ops), ok=st.ok,
            not_found=st.not_found, errors=st.errors, latency=lat))
        st.session.close()
    aggregate = (summarize_latencies(all_latencies) if all_latencies
                 else LatencySummary.empty())
    return ServingReport(
        sessions=sessions, ops=sessions * ops_per_session,
        ok=sum(st.ok for st in states),
        not_found=sum(st.not_found for st in states),
        errors=sum(st.errors for st in states),
        elapsed_ns=elapsed_ns, latency=aggregate,
        worst_p99_us=max((s.latency.p99 for s in per_session
                          if s.latency.count), default=0.0) / 1000.0,
        worst_p999_us=max((s.latency.p999 for s in per_session
                           if s.latency.count), default=0.0) / 1000.0,
        per_session=tuple(per_session), rw_checks=rw_checks)
