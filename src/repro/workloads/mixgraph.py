"""MixGraph workload model (Figure 1(a), Figure 6(a)).

MixGraph is db_bench's benchmark reflecting Meta's production RocksDB
(ZippyDB) characteristics, from Cao et al., FAST '20: *value sizes follow a
Generalized Pareto Distribution* with location 0, scale 35.6612 and shape
0.078688, under which ~60 % of values are smaller than 32 bytes — the
property the paper's Figure 1(a) heatmap shows and Figure 6(a) exploits.

Key sizes in the same study are small and narrowly distributed; we use the
db_bench default of 16-byte keys, which also matches the 16-byte key field
of the NVMe KV command set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

import numpy as np

from repro.sim.rng import make_rng, random_bytes

#: Generalized Pareto parameters from Cao et al. (FAST '20), Table 3.
GPD_SCALE = 35.6612
GPD_SHAPE = 0.078688
#: db_bench MixGraph key size.
KEY_SIZE = 16
#: Values are clamped to the KV command set's practical bounds.
MIN_VALUE = 1
MAX_VALUE = 64 * 1024


def sample_value_sizes(n: int, seed: int = 0x5EED) -> np.ndarray:
    """Draw *n* value sizes from the MixGraph GPD (integer bytes ≥1)."""
    rng = make_rng(seed, "mixgraph.value_size")
    u = rng.random(n)
    # Inverse-CDF of the GPD with location 0:  x = σ/k ((1-u)^-k - 1)
    sizes = GPD_SCALE / GPD_SHAPE * ((1.0 - u) ** -GPD_SHAPE - 1.0)
    return np.clip(sizes.astype(np.int64) + MIN_VALUE, MIN_VALUE, MAX_VALUE)


def fraction_below(sizes: np.ndarray, threshold: int) -> float:
    """Share of values strictly below *threshold* bytes."""
    if len(sizes) == 0:
        return 0.0
    return float(np.mean(sizes < threshold))


def size_histogram(sizes: np.ndarray,
                   bins: Tuple[int, ...] = (16, 32, 64, 128, 256, 512,
                                            1024, 4096)) -> List[Tuple[str, float]]:
    """Binned size distribution, Figure 1(a)-style."""
    out: List[Tuple[str, float]] = []
    low = 0
    for high in bins:
        frac = float(np.mean((sizes >= low) & (sizes < high)))
        out.append((f"[{low},{high})", frac))
        low = high
    out.append((f"[{low},inf)", float(np.mean(sizes >= low))))
    return out


#: Density glyphs for the heatmap, lightest to darkest.
_SHADES = " .:-=+*#%@"


def value_size_heatmap(sizes: np.ndarray, time_buckets: int = 40,
                       bins: Tuple[int, ...] = (16, 32, 64, 128, 256, 512,
                                                1024)) -> str:
    """Figure 1(a)'s actual form: a value-size heatmap over time.

    Operations are bucketed into *time_buckets* equal windows of the
    stream (x axis) and into size *bins* (y axis); cell shade encodes the
    share of that window's operations falling in the size bin.  MixGraph
    is stationary, so the paper's figure (and this one) shows dense
    horizontal bands in the sub-32 B rows.
    """
    if len(sizes) < time_buckets:
        raise ValueError("need at least one op per time bucket")
    edges = (0,) + tuple(bins)
    labels = [f"[{lo},{hi})" for lo, hi in zip(edges, edges[1:])]
    labels.append(f"[{bins[-1]},inf)")
    windows = np.array_split(np.asarray(sizes), time_buckets)
    rows: List[str] = []
    grid: List[List[float]] = []
    for row_idx in range(len(labels)):
        lo = edges[row_idx] if row_idx < len(edges) else bins[-1]
        hi = edges[row_idx + 1] if row_idx + 1 < len(edges) else None
        cells = []
        for window in windows:
            if hi is None:
                frac = float(np.mean(window >= bins[-1]))
            else:
                frac = float(np.mean((window >= lo) & (window < hi)))
            cells.append(frac)
        grid.append(cells)
    peak = max(max(row) for row in grid) or 1.0
    for label, cells in zip(reversed(labels), reversed(grid)):
        shades = "".join(
            _SHADES[min(int(c / peak * (len(_SHADES) - 1)), len(_SHADES) - 1)]
            for c in cells)
        rows.append(f"{label:>12s} |{shades}|")
    rows.append(" " * 13 + "+" + "-" * time_buckets + "+")
    rows.append(" " * 14 + "operation stream (time) ->")
    return "\n".join(rows)


@dataclass
class KvOp:
    """One key-value operation."""

    op: str          # "put" | "get" | "delete"
    key: bytes
    value: bytes = b""


class MixGraphWorkload:
    """Generator of MixGraph-like PUT streams.

    The paper's Figure 6(a) runs 1 M PUTs with default settings; the
    generator is deterministic per seed so every transfer method sees the
    same byte-for-byte operation stream.
    """

    def __init__(self, ops: int, seed: int = 0x5EED,
                 key_space: int = 1_000_000) -> None:
        if ops <= 0:
            raise ValueError("ops must be positive")
        self.ops = ops
        self.seed = seed
        self.key_space = key_space

    def value_sizes(self) -> np.ndarray:
        return sample_value_sizes(self.ops, self.seed)

    def __iter__(self) -> Iterator[KvOp]:
        sizes = self.value_sizes()
        key_rng = make_rng(self.seed, "mixgraph.keys")
        data_rng = make_rng(self.seed, "mixgraph.values")
        key_ids = key_rng.integers(0, self.key_space, size=self.ops)
        for i in range(self.ops):
            key = int(key_ids[i]).to_bytes(8, "big").rjust(KEY_SIZE, b"k")
            value = random_bytes(data_rng, int(sizes[i]))
            yield KvOp("put", key, value)


class FillRandomWorkload:
    """db_bench FillRandom with fixed-size values (Figure 6(b): 128 B)."""

    def __init__(self, ops: int, value_size: int = 128,
                 seed: int = 0x5EED, key_space: int = 1_000_000) -> None:
        if ops <= 0:
            raise ValueError("ops must be positive")
        if value_size <= 0:
            raise ValueError("value_size must be positive")
        self.ops = ops
        self.value_size = value_size
        self.seed = seed
        self.key_space = key_space

    def __iter__(self) -> Iterator[KvOp]:
        key_rng = make_rng(self.seed, "fillrandom.keys")
        data_rng = make_rng(self.seed, "fillrandom.values")
        key_ids = key_rng.integers(0, self.key_space, size=self.ops)
        for i in range(self.ops):
            key = int(key_ids[i]).to_bytes(8, "big").rjust(KEY_SIZE, b"k")
            value = random_bytes(data_rng, self.value_size)
            yield KvOp("put", key, value)
