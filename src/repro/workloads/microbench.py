"""Microbenchmark payload generators (Figures 1(b), 1(c), 5).

The paper's microbenchmarks issue 1 M fixed-size writes per configuration
via NVMe passthrough, sweeping the payload size.  Payloads are random but
deterministic per (seed, size) so all transfer methods move identical
bytes.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.sim.rng import make_rng, random_bytes

#: Figure 5's sweep: 32 B to 16 KB in powers of two.
FIGURE5_SIZES = (32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384)
#: Figure 1(b)'s PRP sweep: 1 KB to 16 KB.
FIGURE1B_SIZES = (1024, 2048, 3072, 4096, 5120, 6144, 8192, 12288, 16384)
#: Figure 1(c)'s sub-1 KB amplification points.
FIGURE1C_SIZES = (32, 64, 128, 256, 512, 1024)


def fixed_size_payloads(size: int, count: int,
                        seed: int = 0x5EED) -> Iterator[bytes]:
    """*count* random payloads of exactly *size* bytes."""
    if size <= 0:
        raise ValueError("payload size must be positive")
    if count <= 0:
        raise ValueError("count must be positive")
    rng = make_rng(seed, f"microbench.{size}")
    for _ in range(count):
        yield random_bytes(rng, size)


def size_sweep(sizes: Sequence[int] = FIGURE5_SIZES, count: int = 100,
               seed: int = 0x5EED):
    """Yield (size, payload iterator) pairs for a sweep."""
    for size in sizes:
        yield size, fixed_size_payloads(size, count, seed)
