"""Workload generators: MixGraph, FillRandom, microbenchmark sweeps."""

from repro.workloads.microbench import (
    FIGURE1B_SIZES,
    FIGURE1C_SIZES,
    FIGURE5_SIZES,
    fixed_size_payloads,
    size_sweep,
)
from repro.workloads.serving import (
    ServingConsistencyError,
    ServingReport,
    SessionReport,
    run_serving,
    session_key,
    session_ops,
)
from repro.workloads.trace import TraceRecorder, dump_trace, load_trace
from repro.workloads.mixgraph import (
    GPD_SCALE,
    GPD_SHAPE,
    KEY_SIZE,
    FillRandomWorkload,
    KvOp,
    MixGraphWorkload,
    fraction_below,
    sample_value_sizes,
    size_histogram,
    value_size_heatmap,
)

__all__ = [
    "MixGraphWorkload",
    "FillRandomWorkload",
    "KvOp",
    "sample_value_sizes",
    "fraction_below",
    "size_histogram",
    "value_size_heatmap",
    "GPD_SCALE",
    "GPD_SHAPE",
    "KEY_SIZE",
    "fixed_size_payloads",
    "size_sweep",
    "FIGURE5_SIZES",
    "FIGURE1B_SIZES",
    "FIGURE1C_SIZES",
    "TraceRecorder",
    "dump_trace",
    "load_trace",
    "run_serving",
    "session_key",
    "session_ops",
    "ServingReport",
    "SessionReport",
    "ServingConsistencyError",
]
