"""Workload trace recording and replay.

Lets users capture a key-value operation stream (from the generators or
from their own application logic) to a JSON-lines file and replay it
byte-exactly later — e.g. to compare transfer methods on a production
trace rather than a synthetic distribution, which is exactly how the
paper's motivating studies (Meta's RocksDB analysis) were produced.

Format: one JSON object per line:
``{"op": "put", "key": "<hex>", "value": "<hex>"}``
(``get``/``delete`` records omit the value).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Iterator, List, Union

from repro.workloads.mixgraph import KvOp

_VALUELESS = ("get", "delete", "exists")


def dump_trace(ops: Iterable[KvOp], path: Union[str, Path]) -> int:
    """Write *ops* to *path*; returns the number of records written."""
    count = 0
    with open(path, "w", encoding="ascii") as fh:
        for op in ops:
            record = {"op": op.op, "key": op.key.hex()}
            if op.op not in _VALUELESS:
                record["value"] = op.value.hex()
            fh.write(json.dumps(record) + "\n")
            count += 1
    return count


def load_trace(path: Union[str, Path]) -> Iterator[KvOp]:
    """Replay a trace file as :class:`KvOp` objects."""
    with open(path, "r", encoding="ascii") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                op = record["op"]
                key = bytes.fromhex(record["key"])
            except (json.JSONDecodeError, KeyError, ValueError) as exc:
                raise ValueError(f"{path}:{lineno}: bad trace record: {exc}")
            if not key:
                raise ValueError(f"{path}:{lineno}: empty key")
            value = bytes.fromhex(record.get("value", ""))
            if op not in ("put",) + _VALUELESS:
                raise ValueError(f"{path}:{lineno}: unknown op {op!r}")
            yield KvOp(op, key, value)


class TraceRecorder:
    """Wraps a KV store, recording every operation it forwards."""

    def __init__(self, store) -> None:
        self.store = store
        self.ops: List[KvOp] = []

    def put(self, key: bytes, value: bytes):
        result = self.store.put(key, value)
        self.ops.append(KvOp("put", key, value))
        return result

    def get(self, key: bytes, **kwargs):
        result = self.store.get(key, **kwargs)
        self.ops.append(KvOp("get", key))
        return result

    def delete(self, key: bytes):
        result = self.store.delete(key)
        self.ops.append(KvOp("delete", key))
        return result

    def save(self, path: Union[str, Path]) -> int:
        return dump_trace(self.ops, path)
