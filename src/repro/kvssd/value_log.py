"""Device-side value log.

KV-SSDs in the iLSM/PinK lineage separate keys from values: values are
appended to a log (the "designated buffer" the paper names as a ByteExpress
landing zone, §3.3.1), and the LSM index maps keys to log pointers.  The
log accumulates entries in a DRAM segment buffer and flushes full segments
to NAND through the FTL — which is what lets small PUTs complete at DRAM
speed while NAND programs pipeline in the background (Figure 6 runs with
NAND enabled).

Entry format: ``key_len u16 | value_len u32 | key | value``.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, Optional, Tuple

from repro.ssd.dram import DeviceDram, DramRegion
from repro.ssd.ftl import PageMappingFtl

_ENTRY_HEADER = struct.Struct("<HI")
#: High bit of key_len marks a durable tombstone record.
_TOMBSTONE_FLAG = 0x8000
#: Maximum key length once the flag bit is reserved.
MAX_LOG_KEY = 0x7FFF


@dataclass(frozen=True)
class LogPointer:
    """Location of one value-log entry."""

    segment: int      # log segment number (== logical page for flushed)
    offset: int       # byte offset within the segment
    length: int       # total entry length (header + key + value)


class ValueLog:
    """Append-only, segment-buffered value log."""

    def __init__(self, dram: DeviceDram, ftl: PageMappingFtl,
                 segment_bytes: Optional[int] = None,
                 lpn_base: int = 0) -> None:
        self.ftl = ftl
        self.segment_bytes = segment_bytes or ftl.nand.geometry.page_bytes
        self.lpn_base = lpn_base
        self._buffer: DramRegion = dram.carve("kv.value_log",
                                              self.segment_bytes)
        self._segment = 0
        self._offset = 0
        #: Flushed segments are reachable through the FTL; the active
        #: segment lives in the DRAM buffer.
        self._flushed: Dict[int, bool] = {}
        #: Per-segment live bytes (dead space is GC's target) and the
        #: number of bytes actually used before padding.
        self._live: Dict[int, int] = {}
        self._used: Dict[int, int] = {}
        self.appends = 0
        self.flushes = 0
        self.gc_runs = 0
        self.gc_relocated = 0

    # ------------------------------------------------------------------
    def entry_size(self, key: bytes, value: bytes) -> int:
        return _ENTRY_HEADER.size + len(key) + len(value)

    def append(self, key: bytes, value: bytes,
               tombstone: bool = False) -> LogPointer:
        """Append one entry; flushes the active segment first if needed.

        *tombstone* writes a durable deletion record (empty value, flag
        bit set in the key length) so crash recovery replays deletes.
        """
        if not key:
            raise ValueError("empty key")
        if len(key) > MAX_LOG_KEY:
            raise ValueError(f"key exceeds {MAX_LOG_KEY} bytes")
        if tombstone and value:
            raise ValueError("tombstones carry no value")
        size = self.entry_size(key, value)
        if size > self.segment_bytes:
            raise ValueError(
                f"entry of {size} B exceeds segment size {self.segment_bytes}")
        if self._offset + size > self.segment_bytes:
            self.flush()
        ptr = LogPointer(self._segment, self._offset, size)
        key_field = len(key) | (_TOMBSTONE_FLAG if tombstone else 0)
        record = _ENTRY_HEADER.pack(key_field, len(value)) + key + value
        self._buffer.write(self._offset, record)
        self._offset += size
        self._live[self._segment] = self._live.get(self._segment, 0) + size
        self.appends += 1
        return ptr

    def flush(self) -> None:
        """Persist the active segment to NAND (pipelined program)."""
        if self._offset == 0:
            return
        data = self._buffer.read(0, self._offset)
        self.ftl.write(self.lpn_base + self._segment, data)
        self._flushed[self._segment] = True
        self._used[self._segment] = self._offset
        self.flushes += 1
        self._segment += 1
        self._offset = 0

    def read(self, ptr: LogPointer) -> Tuple[bytes, bytes]:
        """Fetch (key, value) for a pointer, from DRAM or NAND."""
        if ptr.segment == self._segment and not self._flushed.get(ptr.segment):
            raw = self._buffer.read(ptr.offset, ptr.length)
        elif self._flushed.get(ptr.segment):
            page = self.ftl.read(self.lpn_base + ptr.segment)
            raw = page[ptr.offset:ptr.offset + ptr.length]
        else:
            raise KeyError(f"stale log pointer {ptr}")
        key_len, value_len = _ENTRY_HEADER.unpack_from(raw)
        key_len &= ~_TOMBSTONE_FLAG
        body = raw[_ENTRY_HEADER.size:]
        return body[:key_len], body[key_len:key_len + value_len]

    def peek(self, ptr: LogPointer) -> Tuple[bytes, bytes]:
        """Timing-free :meth:`read` for verification oracles.

        Identical decoding, but flushed segments are fetched through the
        FTL/NAND ``peek`` chain so the shadow read charges no simulated
        time and perturbs no counters.
        """
        if ptr.segment == self._segment and not self._flushed.get(ptr.segment):
            raw = self._buffer.read(ptr.offset, ptr.length)
        elif self._flushed.get(ptr.segment):
            page = self.ftl.peek(self.lpn_base + ptr.segment)
            raw = page[ptr.offset:ptr.offset + ptr.length]
        else:
            raise KeyError(f"stale log pointer {ptr}")
        key_len, value_len = _ENTRY_HEADER.unpack_from(raw)
        key_len &= ~_TOMBSTONE_FLAG
        body = raw[_ENTRY_HEADER.size:]
        return body[:key_len], body[key_len:key_len + value_len]

    @property
    def active_bytes(self) -> int:
        return self._offset

    @property
    def flushed_segments(self) -> Tuple[int, ...]:
        """Flushed (NAND-durable) segment numbers, in flush order."""
        return tuple(sorted(self._flushed))

    def parse_segment(
            self, segment: int
    ) -> Iterator[Tuple[LogPointer, bytes, bytes, bool]]:
        """Public replay iterator over one flushed segment."""
        return self._parse_segment(segment)

    # ------------------------------------------------------------------
    # persistence (repro.durability)
    # ------------------------------------------------------------------
    # The log's *metadata* (segment counters, flushed map) and its active
    # DRAM buffer are DEVICE_VOLATILE; flushed segments live behind the
    # FTL in the persistent NAND domain.  The log registers as
    # *checkpointed*: real firmware journals this metadata alongside the
    # mapping table at flush boundaries.  The durable watermark after a
    # crash is exactly the flushed-segment set in the restored snapshot.

    def snapshot(self) -> object:
        return {
            "segment": self._segment,
            "offset": self._offset,
            "flushed": dict(self._flushed),
            "live": dict(self._live),
            "used": dict(self._used),
            "buffer": self._buffer.read(0, self.segment_bytes),
            "counters": (self.appends, self.flushes,
                         self.gc_runs, self.gc_relocated),
        }

    def restore(self, state: object) -> None:
        assert isinstance(state, dict)
        self._segment = state["segment"]
        self._offset = state["offset"]
        self._flushed = dict(state["flushed"])
        self._live = dict(state["live"])
        self._used = dict(state["used"])
        self._buffer.write(0, state["buffer"])
        (self.appends, self.flushes,
         self.gc_runs, self.gc_relocated) = state["counters"]

    def scrub(self) -> None:
        """Power cut: the active segment and all metadata vanish.

        The DRAM buffer region itself survives (same carve, zeroed) so
        the log keeps its identity across a controller reset instead of
        re-carving — which would raise on the duplicate region name.
        """
        self._segment = 0
        self._offset = 0
        self._flushed.clear()
        self._live.clear()
        self._used.clear()
        self._buffer.scrub()

    # ------------------------------------------------------------------
    # garbage collection
    # ------------------------------------------------------------------
    def mark_dead(self, ptr: LogPointer) -> None:
        """Account an entry as dead (overwritten or deleted)."""
        live = self._live.get(ptr.segment, 0) - ptr.length
        self._live[ptr.segment] = max(0, live)

    @property
    def dead_bytes(self) -> int:
        """Dead space across *flushed* segments (GC's reclaimable pool)."""
        total = 0
        for seg in self._flushed:
            total += self._used.get(seg, 0) - self._live.get(seg, 0)
        return total

    def _parse_segment(
            self, segment: int
    ) -> Iterator[Tuple[LogPointer, bytes, bytes, bool]]:
        """Yield (ptr, key, value, is_tombstone) for a flushed segment."""
        page = self.ftl.read(self.lpn_base + segment)
        used = self._used[segment]
        offset = 0
        while offset + _ENTRY_HEADER.size <= used:
            key_field, value_len = _ENTRY_HEADER.unpack_from(page, offset)
            if key_field == 0:
                break
            is_tomb = bool(key_field & _TOMBSTONE_FLAG)
            key_len = key_field & ~_TOMBSTONE_FLAG
            size = _ENTRY_HEADER.size + key_len + value_len
            body = page[offset + _ENTRY_HEADER.size:offset + size]
            yield (LogPointer(segment, offset, size),
                   bytes(body[:key_len]), bytes(body[key_len:]), is_tomb)
            offset += size

    def collect(
            self,
            is_live: Callable[[bytes, LogPointer], bool],
            on_relocate: Callable[[bytes, LogPointer, LogPointer], None],
            keep_tombstone: Optional[Callable[[bytes], bool]] = None,
    ) -> bool:
        """One GC pass: reclaim the flushed segment with the most garbage.

        *is_live(key, ptr)* asks the index whether *ptr* is still current;
        *on_relocate(key, old_ptr, new_ptr)* updates the index after a
        live entry is re-appended.  *keep_tombstone(key)*, when given,
        decides whether a durable deletion record must be carried forward
        (it must while any older segment may still hold the key).
        Returns False when nothing is worth collecting.
        """
        candidates = [seg for seg in self._flushed
                      if self._used.get(seg, 0) > self._live.get(seg, 0)]
        if not candidates:
            return False
        victim = max(candidates,
                     key=lambda s: self._used[s] - self._live.get(s, 0))
        for old_ptr, key, value, is_tomb in list(self._parse_segment(victim)):
            if is_tomb:
                if keep_tombstone is not None and keep_tombstone(key):
                    self.append(key, b"", tombstone=True)
                    self.gc_relocated += 1
                continue
            if not is_live(key, old_ptr):
                continue
            new_ptr = self.append(key, value)
            on_relocate(key, old_ptr, new_ptr)
            self.gc_relocated += 1
        self.ftl.trim(self.lpn_base + victim)
        del self._flushed[victim]
        self._used.pop(victim, None)
        self._live.pop(victim, None)
        self.gc_runs += 1
        return True
