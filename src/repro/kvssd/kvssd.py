"""KV-SSD device personality.

Implements the NVMe Key-Value command set on top of the OpenSSD model,
in the style of the iterator-extended LSM KV-SSD the paper evaluates on
(Figure 6): a value log absorbs PUT payloads (the ByteExpress landing
buffer), an LSM index maps keys to log pointers, and NAND I/O proceeds
pipelined underneath.

The personality is transfer-method agnostic: the payload reaches the
handler identically whether it travelled by PRP, SGL, BandSlim fragments,
MMIO or ByteExpress — which is precisely the compatibility property the
paper claims for ByteExpress.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

from repro.kvssd.commands import (
    KvEncodingError,
    decode_batch_payload,
    decode_store_payload,
    unpack_key_fields,
)
from repro.durability.domains import DEVICE_VOLATILE
from repro.kvssd.lsm import LsmIndex
from repro.kvssd.value_log import ValueLog
from repro.nvme.constants import KvOpcode, StatusCode, VendorOpcode
from repro.sim.config import TimingModel
from repro.ssd.controller import CommandContext, CommandResult
from repro.ssd.device import OpenSsd
from repro.ssd.nand import NandError

#: Logical-page range reserved for the value log (the LSM index gets the
#: upper half of the logical space).
VLOG_LPN_BASE = 0


class KvSsdPersonality:
    """Firmware handlers for STORE / RETRIEVE / DELETE / EXIST / LIST."""

    def __init__(self, ssd: OpenSsd,
                 memtable_entries: int = 4096) -> None:
        self.ssd = ssd
        self.vlog = ValueLog(ssd.dram, ssd.ftl, lpn_base=VLOG_LPN_BASE)
        lsm_base = ssd.ftl.logical_capacity_pages // 2
        self.index = LsmIndex(ssd.ftl, lpn_base=lsm_base,
                              memtable_entries=memtable_entries)
        ctl = ssd.controller
        ctl.register_handler(KvOpcode.STORE, self._on_store)
        ctl.register_handler(KvOpcode.RETRIEVE, self._on_retrieve,
                             data_phase=False)
        ctl.register_handler(KvOpcode.DELETE, self._on_delete,
                             data_phase=False)
        ctl.register_handler(KvOpcode.EXIST, self._on_exist,
                             data_phase=False)
        ctl.register_handler(KvOpcode.LIST, self._on_list, data_phase=False)
        ctl.register_handler(VendorOpcode.KV_BATCH_STORE, self._on_batch_store)
        # Persistence domains: the log's metadata checkpoints at flush
        # boundaries (its flushed-segment set *is* the durable
        # watermark); the DRAM-pinned index is rebuilt by replay.
        ssd.durability.register("kv.value_log", DEVICE_VOLATILE, self.vlog,
                                checkpointed=True)
        ssd.durability.register("kv.index", DEVICE_VOLATILE, self.index)
        #: Run value-log GC once dead space exceeds this many segments.
        self.gc_threshold_bytes = 2 * self.vlog.segment_bytes
        self.puts = 0
        self.gets = 0
        self.deletes = 0
        self.lists = 0

    # ------------------------------------------------------------------
    @property
    def _timing(self) -> TimingModel:
        return self.ssd.config.timing

    def _on_store(self, ctx: CommandContext) -> CommandResult:
        if ctx.data is None:
            return CommandResult(StatusCode.INVALID_FIELD)
        try:
            key, value = decode_store_payload(ctx.data)
        except KvEncodingError:
            return CommandResult(StatusCode.INVALID_FIELD)
        if ctx.cmd.cdw14 and ctx.cmd.cdw14 != len(key):
            return CommandResult(StatusCode.INVALID_FIELD)
        self.ssd.clock.advance(self._timing.kv_put_logic_ns)
        old = self.index.get(key)
        try:
            ptr = self.vlog.append(key, value)
        except (ValueError, NandError):
            return CommandResult(StatusCode.MEDIA_WRITE_FAULT)
        self.index.put(key, ptr)
        if old is not None:
            self.vlog.mark_dead(old)
        self.puts += 1
        self.maybe_collect()
        return CommandResult(result=len(value))

    def _on_batch_store(self, ctx: CommandContext) -> CommandResult:
        """Compound STORE (§2.2.1's bulk-PUT): all-or-nothing semantics.

        Protocol overhead amortises over the batch, but the per-pair
        engine work (log append + index insert) remains — and the pairs
        share one durability point, which is exactly why the paper notes
        batching "may not always be applicable" for fine-grained
        persistence workloads.
        """
        if ctx.data is None:
            return CommandResult(StatusCode.INVALID_FIELD)
        try:
            pairs = decode_batch_payload(ctx.data)
        except KvEncodingError:
            return CommandResult(StatusCode.INVALID_FIELD)
        # One command-level parse plus per-pair engine work.
        self.ssd.clock.advance(self._timing.kv_put_logic_ns * len(pairs))
        stored = 0
        for key, value in pairs:
            old = self.index.get(key)
            try:
                ptr = self.vlog.append(key, value)
            except (ValueError, NandError):
                return CommandResult(StatusCode.MEDIA_WRITE_FAULT,
                                     result=stored)
            self.index.put(key, ptr)
            if old is not None:
                self.vlog.mark_dead(old)
            stored += 1
        self.puts += stored
        self.maybe_collect()
        return CommandResult(result=stored)

    def maybe_collect(self) -> bool:
        """Run one value-log GC pass if dead space crossed the threshold."""
        if self.vlog.dead_bytes < self.gc_threshold_bytes:
            return False
        return self.vlog.collect(
            is_live=lambda key, ptr: self.index.get(key) == ptr,
            on_relocate=lambda key, _old, new: self.index.put(key, new),
            keep_tombstone=lambda key: self.index.get(key) is None)

    def _lookup(self, ctx: CommandContext) -> Tuple[Optional[bytes],
                                                    Optional[bytes]]:
        try:
            key = unpack_key_fields(ctx.cmd)
        except KvEncodingError:
            return None, None
        ptr = self.index.get(key)
        if ptr is None:
            return key, None
        stored_key, value = self.vlog.read(ptr)
        if stored_key != key:  # pragma: no cover - index corruption guard
            return key, None
        return key, value

    def _on_retrieve(self, ctx: CommandContext) -> CommandResult:
        self.ssd.clock.advance(self._timing.kv_get_logic_ns)
        key, value = self._lookup(ctx)
        if key is None:
            return CommandResult(StatusCode.INVALID_FIELD)
        self.gets += 1
        if value is None:
            return CommandResult(StatusCode.KV_KEY_NOT_FOUND)
        return CommandResult(result=len(value), read_data=value)

    def _on_delete(self, ctx: CommandContext) -> CommandResult:
        self.ssd.clock.advance(self._timing.kv_put_logic_ns)
        try:
            key = unpack_key_fields(ctx.cmd)
        except KvEncodingError:
            return CommandResult(StatusCode.INVALID_FIELD)
        old = self.index.get(key)
        if old is None:
            return CommandResult(StatusCode.KV_KEY_NOT_FOUND)
        self.index.delete(key)
        self.vlog.mark_dead(old)
        # Durable deletion record, so crash recovery replays the delete.
        tomb = self.vlog.append(key, b"", tombstone=True)
        self.vlog.mark_dead(tomb)  # tombstones are immediately dead space
        self.deletes += 1
        return CommandResult()

    def _on_exist(self, ctx: CommandContext) -> CommandResult:
        self.ssd.clock.advance(self._timing.kv_get_logic_ns)
        key, value = self._lookup(ctx)
        if key is None:
            return CommandResult(StatusCode.INVALID_FIELD)
        if value is None:
            return CommandResult(StatusCode.KV_KEY_NOT_FOUND)
        return CommandResult(result=len(value))

    def _on_list(self, ctx: CommandContext) -> CommandResult:
        """NVMe-KV LIST: keys ≥ the given key, in order, bounded by CDW15.

        Returns the spec-style key list: u32 count followed by
        (u16 key_len | key) records.
        """
        self.ssd.clock.advance(self._timing.kv_get_logic_ns)
        try:
            start = unpack_key_fields(ctx.cmd)
        except KvEncodingError:
            return CommandResult(StatusCode.INVALID_FIELD)
        max_keys = ctx.cmd.cdw15 or 64
        keys = []
        for key, _ptr in self.index.scan(start, b"\xff" * 255):
            keys.append(key)
            if len(keys) >= max_keys:
                break
        out = bytearray(len(keys).to_bytes(4, "little"))
        for key in keys:
            out += len(key).to_bytes(2, "little") + key
        self.lists += 1
        # Like RETRIEVE, the CQE result reports the *byte* length of the
        # data return, so the host can trim its read buffer exactly.
        return CommandResult(result=len(out), read_data=bytes(out))

    def peek(self, key: bytes) -> Optional[bytes]:
        """Timing-free ground-truth lookup for verification oracles.

        The cache-coherence invariant shadow-reads every cache hit from
        the device; going through :meth:`_lookup` would advance the
        simulated clock and skew the NAND counters, so this walks the
        DRAM-pinned index and the value log's ``peek`` chain instead.
        Returns None for missing/deleted keys.
        """
        ptr = self.index.get(key)
        if ptr is None:
            return None
        stored_key, value = self.vlog.peek(ptr)
        if stored_key != key:  # pragma: no cover - index corruption guard
            return None
        return value

    # ------------------------------------------------------------------
    # device-local iteration (used by tests and the example applications)
    # ------------------------------------------------------------------
    def scan(self, start: bytes, end: bytes) -> Iterator[Tuple[bytes, bytes]]:
        """Range scan over [start, end): the SYSTOR '23 iterator API."""
        for key, ptr in self.index.scan(start, end):
            stored_key, value = self.vlog.read(ptr)
            yield stored_key, value

    # ------------------------------------------------------------------
    # crash recovery
    # ------------------------------------------------------------------
    def replay_value_log(self) -> int:
        """Replay flushed value-log segments into the (empty) index.

        Walks the durable watermark — the flushed-segment set — in
        segment order: last-writer-wins falls out of replay order, and
        durable tombstone records make deletions survive the crash.
        Returns the number of live keys replayed.
        """
        restored: dict = {}
        for segment in self.vlog.flushed_segments:
            for ptr, key, value, is_tomb in self.vlog.parse_segment(segment):
                if is_tomb:
                    restored.pop(key, None)
                else:
                    restored[key] = ptr
        for key, ptr in restored.items():
            self.index.put(key, ptr)
        return len(restored)

    def recover(self) -> int:
        """Boot-time recovery: scrub the volatile index, replay the log.

        The index object *survives* (same LPN window, same tuning) —
        ``Persistable.scrub()`` resets its contents in place, so device
        identity persists across a controller reset instead of leaking
        a fresh index at a shifted LPN base per recovery.
        """
        self.index.scrub()
        return self.replay_value_log()

    def crash_and_recover(self) -> int:
        """Simulate power loss and rebuild the KV state from NAND.

        Enterprise KV-SSDs back their DRAM write buffer with capacitors
        (power-loss protection): on power fail the active value-log
        segment is flushed to NAND, but the volatile index state — the
        memtable and DRAM-pinned LSM levels — is gone.  Recovery then
        rebuilds the index by replaying the log (:meth:`recover`).

        Returns the number of live keys after recovery.
        """
        # Power-loss protection: the capacitor-backed flush.
        self.vlog.flush()
        self.ssd.nand.drain()
        return self.recover()
