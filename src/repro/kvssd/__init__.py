"""KV-SSD substrate: value log, LSM index, KV command set, device
personality, the host key-value API, and the serving front-end."""

from repro.kvssd.api import KeyNotFoundError, KvError, KVStore
from repro.kvssd.cache import CacheStats, ShardedReadCache
from repro.kvssd.commands import (
    MAX_INLINE_KEY,
    KvEncodingError,
    decode_batch_payload,
    decode_key_list,
    decode_store_payload,
    encode_batch_payload,
    encode_store_payload,
    key_field_words,
    make_delete_command,
    make_exist_command,
    make_list_command,
    make_retrieve_command,
    make_store_command,
    pack_key_fields,
    unpack_key_fields,
)
from repro.kvssd.kvssd import KvSsdPersonality
from repro.kvssd.lsm import TOMBSTONE, LsmIndex, SsTable
from repro.kvssd.service import (
    KvFuture,
    KvService,
    KvSession,
    ServiceError,
    ServiceStats,
)
from repro.kvssd.value_log import LogPointer, ValueLog

__all__ = [
    "KVStore",
    "KvService",
    "KvSession",
    "KvFuture",
    "ServiceError",
    "ServiceStats",
    "ShardedReadCache",
    "CacheStats",
    "key_field_words",
    "KvError",
    "KeyNotFoundError",
    "KvSsdPersonality",
    "ValueLog",
    "LogPointer",
    "LsmIndex",
    "SsTable",
    "TOMBSTONE",
    "encode_store_payload",
    "decode_store_payload",
    "pack_key_fields",
    "unpack_key_fields",
    "make_store_command",
    "make_retrieve_command",
    "make_delete_command",
    "make_exist_command",
    "make_list_command",
    "decode_key_list",
    "encode_batch_payload",
    "decode_batch_payload",
    "KvEncodingError",
    "MAX_INLINE_KEY",
]
