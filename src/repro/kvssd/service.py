"""KV serving front-end: session multiplexing over the async engine.

This is the "served system" shape of the ROADMAP's ordered KV front-end:
thousands of client sessions multiplexed onto one :class:`IoEngine`,
with three serving optimisations layered over the raw KV command set —

* **Group-commit write batching.**  PUTs arriving within a batching
  window coalesce into one ``KV_BATCH_STORE`` compound command that
  rides the selected inline/burst datapath; every member PUT gets its
  own :class:`KvFuture`, all resolved when the group commits.  The
  window closes early when the batch reaches ``batch_max_pairs`` or a
  read needs one of its keys (a read barrier).
* **Sharded invalidating read cache.**  GET hits are served from host
  memory at zero simulated-time and zero link cost; PUT/DELETE/commit
  invalidate before acknowledging, so a GET never observes a value
  older than its session's last acknowledged write.  Disabled
  (``cache_entries=0``) the cache is never consulted — the traffic
  fingerprint is byte-identical to the per-op path.
* **Ordered range scan.**  :meth:`scan` pages the device's LSM iterator
  through LIST commands and reads values through (not around) the
  cache-coherence machinery, so a scan started after a write barrier
  sees that write.

The service is deliberately *not* re-entrant with simulated time: like
the engine it fronts, a single host thread drives :meth:`poll`, and all
concurrency is expressed through outstanding futures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (TYPE_CHECKING, Callable, Dict, Iterator, List, Optional,
                    Tuple)

from repro.datapath import names as dp_names
from repro.engine.engine import IoEngine
from repro.engine.table import CommandFuture
from repro.kvssd.cache import CacheStats, ShardedReadCache
from repro.kvssd.commands import (
    MAX_INLINE_KEY,
    decode_key_list,
    encode_batch_payload,
    encode_store_payload,
    key_field_words,
)
from repro.nvme.constants import KvOpcode, StatusCode, VendorOpcode

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.kvssd.kvssd import KvSsdPersonality

#: Future lifecycle states (mirrors the engine's vocabulary).
PENDING = "pending"
OK = "ok"
NOT_FOUND = "not_found"
FAILED = "failed"

#: Where a resolved GET's value came from.
FROM_CACHE = "cache"
FROM_DEVICE = "device"


class ServiceError(Exception):
    """Misuse of the serving API (bad key, closed session, ...)."""


class KvFuture:
    """Completion handle for one client operation.

    Unlike the engine's :class:`CommandFuture` this is a *serving-level*
    future: one PUT future may share a single device command with dozens
    of others (group commit), and one GET future may resolve with no
    device command at all (cache hit).
    """

    __slots__ = ("op", "key", "value", "state", "status", "served_from",
                 "submit_ns", "latency_ns", "session_id")

    def __init__(self, op: str, key: bytes, session_id: int,
                 submit_ns: float) -> None:
        self.op = op
        self.key = key
        self.session_id = session_id
        self.submit_ns = submit_ns
        self.value: Optional[bytes] = None
        self.state = PENDING
        #: NVMe status of the resolving command; None for cache hits.
        self.status: Optional[int] = None
        self.served_from: Optional[str] = None
        self.latency_ns: float = 0.0

    @property
    def done(self) -> bool:
        return self.state != PENDING

    @property
    def ok(self) -> bool:
        return self.state == OK

    @property
    def not_found(self) -> bool:
        return self.state == NOT_FOUND

    def result(self) -> bytes:
        """The GET value; raises while pending or on failure."""
        if not self.done:
            raise ServiceError("operation still in flight")
        if self.state == NOT_FOUND:
            raise KeyError(self.key.hex())
        if self.state != OK:
            raise ServiceError(
                f"{self.op} failed with status "
                f"{self.status:#x}" if self.status is not None
                else f"{self.op} failed without a completion")
        return self.value if self.value is not None else b""

    def _resolve(self, state: str, now_ns: float,
                 status: Optional[int] = None,
                 value: Optional[bytes] = None,
                 served_from: Optional[str] = None) -> None:
        if self.done:
            raise ServiceError(f"future already resolved ({self.state})")
        self.state = state
        self.status = status
        self.value = value
        self.served_from = served_from
        self.latency_ns = now_ns - self.submit_ns

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"KvFuture({self.op}, {self.key!r}, {self.state}, "
                f"from={self.served_from})")


@dataclass
class ServiceStats:
    """Aggregate serving counters (cache counters live on the cache)."""

    puts: int = 0
    gets: int = 0
    deletes: int = 0
    scans: int = 0
    #: KV_BATCH_STORE commands issued and the pairs they carried.
    batches: int = 0
    batched_pairs: int = 0
    #: Batch-close causes.
    flush_size: int = 0
    flush_deadline: int = 0
    flush_explicit: int = 0
    flush_barrier: int = 0
    #: GET/DELETEs parked behind a pending write to the same key.
    deferred_ops: int = 0

    @property
    def mean_batch_pairs(self) -> float:
        return self.batched_pairs / self.batches if self.batches else 0.0


@dataclass
class _BatchRecord:
    """One group commit: the open (or in-flight) write batch."""

    pairs: List[Tuple[bytes, bytes]] = field(default_factory=list)
    futures: List[KvFuture] = field(default_factory=list)
    deadline_ns: float = float("inf")
    #: Thunks to run after the group commits — deferred reads/deletes
    #: whose key this batch is about to overwrite.
    followers: List[Callable[[], None]] = field(default_factory=list)
    committed: bool = False


class KvSession:
    """One client session: an ordered stream of operations.

    The session id doubles as the engine *stream* tag, so the
    multi-queue scheduler can keep a session's commands on one SQ/CQ
    pair (queue affinity) while spreading sessions across queues.
    """

    __slots__ = ("service", "session_id", "ops", "closed")

    def __init__(self, service: "KvService", session_id: int) -> None:
        self.service = service
        self.session_id = session_id
        self.ops = 0
        self.closed = False

    def _check(self) -> None:
        if self.closed:
            raise ServiceError(f"session {self.session_id} is closed")
        self.ops += 1

    def put(self, key: bytes, value: bytes) -> KvFuture:
        self._check()
        return self.service._put(key, value, self.session_id)

    def get(self, key: bytes) -> KvFuture:
        self._check()
        return self.service._get(key, self.session_id)

    def delete(self, key: bytes) -> KvFuture:
        self._check()
        return self.service._delete(key, self.session_id)

    def scan(self, start: bytes, end: Optional[bytes] = None,
             page_size: int = 64) -> Iterator[Tuple[bytes, bytes]]:
        self._check()
        return self.service.scan(start, end, page_size=page_size)

    def close(self) -> None:
        self.closed = True
        self.service._sessions.pop(self.session_id, None)


class KvService:
    """The serving front-end over one engine + KV-SSD personality.

    ``batch_window_ns=0`` disables group commit (every PUT is its own
    STORE command) and ``cache_entries=0`` disables the read cache;
    with both off the device-visible traffic is byte-identical to
    driving the engine per-op, which the golden parity test pins.
    """

    #: Monitor hook: the protocol monitor (REPRO_VERIFY=1) patches this
    #: *instance* attribute to shadow-read every cache hit from the
    #: device; the class-level default keeps detach() restoring a plain
    #: no-hook state.  Signature: hook(key, value) -> None.
    on_cache_hit: Optional[Callable[[bytes, bytes], None]] = None

    def __init__(self, engine: IoEngine,
                 personality: Optional["KvSsdPersonality"] = None,
                 method: str = dp_names.BYTEEXPRESS,
                 batch_window_ns: float = 0.0,
                 batch_max_pairs: int = 32,
                 cache_entries: int = 0,
                 cache_shards: int = 8,
                 max_value_bytes: int = 4096,
                 nsid: Optional[int] = None) -> None:
        if batch_window_ns < 0:
            raise ServiceError(
                f"negative batch window {batch_window_ns}")
        if batch_max_pairs <= 0:
            raise ServiceError(
                f"batch_max_pairs must be positive, got {batch_max_pairs}")
        self.engine = engine
        self.personality = personality
        self.clock = engine.clock
        self.method = method
        self.batch_window_ns = batch_window_ns
        self.batch_max_pairs = batch_max_pairs
        self.max_value_bytes = max_value_bytes
        self.nsid = nsid
        self.cache: Optional[ShardedReadCache] = (
            ShardedReadCache(cache_entries, cache_shards)
            if cache_entries > 0 else None)
        self.stats = ServiceStats()
        self._sessions: Dict[int, KvSession] = {}
        self._next_session = 0
        #: The open (not yet submitted) write batch, if any.
        self._open: Optional[_BatchRecord] = None
        #: key → batch record that will write it (open or in flight).
        #: A GET/DELETE for one of these keys must not pass the write.
        self._pending: Dict[bytes, _BatchRecord] = {}
        #: Engine futures we are waiting on, in submission order, each
        #: with the serving-level callback that consumes its result.
        self._watch: List[Tuple[CommandFuture, Callable[[CommandFuture],
                                                        None]]] = []

    # ------------------------------------------------------------------
    # session table
    # ------------------------------------------------------------------
    def open_session(self) -> KvSession:
        sid = self._next_session
        self._next_session += 1
        session = KvSession(self, sid)
        self._sessions[sid] = session
        return session

    @property
    def session_count(self) -> int:
        return len(self._sessions)

    @property
    def cache_stats(self) -> CacheStats:
        return self.cache.stats if self.cache is not None else CacheStats()

    # ------------------------------------------------------------------
    # the three verbs
    # ------------------------------------------------------------------
    @staticmethod
    def _check_key(key: bytes) -> None:
        if not key:
            raise ServiceError("empty key")
        if len(key) > MAX_INLINE_KEY:
            raise ServiceError(
                f"key of {len(key)} B exceeds the {MAX_INLINE_KEY} B "
                f"in-command key field")

    def _put(self, key: bytes, value: bytes, sid: int) -> KvFuture:
        self._check_key(key)
        self.stats.puts += 1
        future = KvFuture("put", key, sid, self.clock.now)
        # Invalidate *before* the write is even submitted: from this
        # moment until commit re-invalidates, no read-through may
        # install a pre-write value (the cache's fill fence).
        if self.cache is not None:
            self.cache.invalidate(key)
        if self.batch_window_ns <= 0:
            return self._put_per_op(key, value, future)
        record = self._open
        if record is None:
            record = self._open = _BatchRecord(
                deadline_ns=self.clock.now + self.batch_window_ns)
        record.pairs.append((key, value))
        record.futures.append(future)
        self._pending[key] = record
        if len(record.pairs) >= self.batch_max_pairs:
            self.stats.flush_size += 1
            self._flush_open()
        return future

    def _put_per_op(self, key: bytes, value: bytes,
                    future: KvFuture) -> KvFuture:
        payload = encode_store_payload(key, value)
        ef = self.engine.submit(payload, method=self.method,
                                opcode=KvOpcode.STORE, nsid=self.nsid,
                                stream=future.session_id)

        def on_done(ef: CommandFuture) -> None:
            if self.cache is not None:
                self.cache.invalidate(key)
            if ef.ok:
                future._resolve(OK, self.clock.now, ef.status,
                                served_from=FROM_DEVICE)
            else:
                future._resolve(FAILED, self.clock.now, ef.status)

        self._watch.append((ef, on_done))
        return future

    def _get(self, key: bytes, sid: int) -> KvFuture:
        self._check_key(key)
        self.stats.gets += 1
        future = KvFuture("get", key, sid, self.clock.now)
        record = self._pending.get(key)
        if record is not None:
            # Read barrier: the key has an unacknowledged write.  Close
            # the window now (latency over batching for dependent reads)
            # and run the read after the group commits — read-your-writes
            # by construction.
            self.stats.deferred_ops += 1
            record.followers.append(lambda: self._get_through(key, future))
            if record is self._open:
                self.stats.flush_barrier += 1
                self._flush_open()
            return future
        self._get_through(key, future)
        return future

    def _get_through(self, key: bytes, future: KvFuture) -> None:
        """Cache lookup, then device read-through on a miss."""
        if self.cache is not None:
            value = self.cache.lookup(key)
            if value is not None:
                hook = self.on_cache_hit
                if hook is not None:
                    hook(key, value)
                future._resolve(OK, self.clock.now, None, value, FROM_CACHE)
                return
            token = self.cache.begin_fill(key)
        else:
            token = None
        mptr, cdw10, cdw11, cdw14 = key_field_words(key)
        ef = self.engine.submit_read(
            self.max_value_bytes, KvOpcode.RETRIEVE, cdw10=cdw10,
            cdw11=cdw11, mptr=mptr, cdw14=cdw14, nsid=self.nsid,
            stream=future.session_id)

        def on_done(ef: CommandFuture) -> None:
            if ef.status == StatusCode.KV_KEY_NOT_FOUND:
                future._resolve(NOT_FOUND, self.clock.now, ef.status)
                return
            if not ef.ok:
                future._resolve(FAILED, self.clock.now, ef.status)
                return
            value = ef.data if ef.data is not None else b""
            if self.cache is not None and token is not None:
                self.cache.commit_fill(token, value)
            future._resolve(OK, self.clock.now, ef.status, value,
                            FROM_DEVICE)

        self._watch.append((ef, on_done))

    def _delete(self, key: bytes, sid: int) -> KvFuture:
        self._check_key(key)
        self.stats.deletes += 1
        future = KvFuture("delete", key, sid, self.clock.now)
        if self.cache is not None:
            self.cache.invalidate(key)
        record = self._pending.get(key)
        if record is not None:
            # Same barrier as reads: the delete must land after the
            # pending write it shadows, or the device would resurrect
            # the batched value.
            self.stats.deferred_ops += 1
            record.followers.append(
                lambda: self._delete_through(key, future))
            if record is self._open:
                self.stats.flush_barrier += 1
                self._flush_open()
            return future
        self._delete_through(key, future)
        return future

    def _delete_through(self, key: bytes, future: KvFuture) -> None:
        mptr, cdw10, cdw11, cdw14 = key_field_words(key)
        ef = self.engine.submit_read(
            0, KvOpcode.DELETE, cdw10=cdw10, cdw11=cdw11, mptr=mptr,
            cdw14=cdw14, nsid=self.nsid, stream=future.session_id)

        def on_done(ef: CommandFuture) -> None:
            if self.cache is not None:
                self.cache.invalidate(key)
            if ef.status == StatusCode.KV_KEY_NOT_FOUND:
                future._resolve(NOT_FOUND, self.clock.now, ef.status)
            elif ef.ok:
                future._resolve(OK, self.clock.now, ef.status,
                                served_from=FROM_DEVICE)
            else:
                future._resolve(FAILED, self.clock.now, ef.status)

        self._watch.append((ef, on_done))

    # ------------------------------------------------------------------
    # group commit
    # ------------------------------------------------------------------
    def _flush_open(self) -> None:
        """Submit the open batch as one KV_BATCH_STORE command."""
        record = self._open
        if record is None or not record.pairs:
            return
        self._open = None
        payload = encode_batch_payload(record.pairs)
        self.stats.batches += 1
        self.stats.batched_pairs += len(record.pairs)
        ef = self.engine.submit(payload, method=self.method,
                                opcode=VendorOpcode.KV_BATCH_STORE,
                                nsid=self.nsid,
                                stream=record.futures[0].session_id)

        def on_done(ef: CommandFuture) -> None:
            record.committed = True
            # Re-invalidate at commit: a read-through that raced the
            # batch (began before submit, filled after) must not leave
            # a pre-commit value behind.
            if self.cache is not None:
                for key, _value in record.pairs:
                    self.cache.invalidate(key)
            for key, _value in record.pairs:
                if self._pending.get(key) is record:
                    del self._pending[key]
            now = self.clock.now
            state = OK if ef.ok else FAILED
            for future in record.futures:
                future._resolve(state, now, ef.status,
                                served_from=FROM_DEVICE)
            # Barrier'd reads/deletes run strictly after the commit.
            for follower in record.followers:
                follower()

        self._watch.append((ef, on_done))

    def flush(self) -> None:
        """Close the batching window now (explicit group commit)."""
        if self._open is not None and self._open.pairs:
            self.stats.flush_explicit += 1
        self._flush_open()

    # ------------------------------------------------------------------
    # progress
    # ------------------------------------------------------------------
    def poll(self) -> int:
        """One serving round: deadline flush → engine poll → callbacks.

        Returns the number of *serving* futures resolved.  When the
        engine pipeline is idle but a batch window is still open, the
        clock sleeps forward to the window deadline and commits — the
        serving analogue of the reactor's backoff sleep, without which
        every session blocked on a PUT would spin on a frozen clock.
        """
        record = self._open
        if record is not None and self.clock.now >= record.deadline_ns:
            self.stats.flush_deadline += 1
            self._flush_open()
        self.engine.poll()
        resolved = self._run_callbacks()
        if (resolved == 0 and self._open is not None
                and not self.engine.table and not self.engine.parked):
            record = self._open
            self.clock.advance_to(record.deadline_ns)
            self.stats.flush_deadline += 1
            self._flush_open()
            self.engine.poll()
            resolved = self._run_callbacks()
        return resolved

    def _run_callbacks(self) -> int:
        """Fire callbacks of resolved engine futures, in issue order."""
        fired = 0
        while True:
            remaining: List[Tuple[CommandFuture,
                                  Callable[[CommandFuture], None]]] = []
            ready: List[Tuple[CommandFuture,
                              Callable[[CommandFuture], None]]] = []
            for ef, callback in self._watch:
                (ready if ef.done else remaining).append((ef, callback))
            if not ready:
                return fired
            self._watch = remaining
            for ef, callback in ready:
                callback(ef)
                fired += 1
            # Callbacks may have registered new watchers on futures the
            # engine already resolved (group-commit followers resolved
            # from cache); loop until quiescent.

    def drain(self) -> int:
        """Commit the open batch and run every outstanding op down.

        Returns the number of serving futures resolved while draining.
        """
        self.flush()
        resolved = self._run_callbacks()
        stall = 0
        while self._watch or self._open is not None:
            before = (len(self._watch), self.clock.now)
            resolved += self.poll()
            after = (len(self._watch), self.clock.now)
            stall = stall + 1 if after == before else 0
            if stall > 100:
                raise ServiceError(
                    f"drain stalled with {len(self._watch)} watched "
                    f"futures outstanding")
        return resolved

    # ------------------------------------------------------------------
    # ordered range scan
    # ------------------------------------------------------------------
    def scan(self, start: bytes, end: Optional[bytes] = None,
             page_size: int = 64) -> Iterator[Tuple[bytes, bytes]]:
        """Ordered iteration over ``[start, end)`` in pages.

        Each page is one LIST command — a consistent snapshot of the
        device's LSM iterator at the moment it executes — and every
        value is read *through* the serving read path (cache lookup,
        coherent read-through), never around it.  The scan drains the
        service first so it observes all previously issued writes
        (scan-after-write consistency); keys deleted between the page
        snapshot and the value read are skipped.
        """
        self._check_key(start)
        if page_size <= 0:
            raise ServiceError(
                f"page_size must be positive, got {page_size}")
        self.stats.scans += 1
        self.drain()
        return self._scan_pages(start, end, page_size)

    def _scan_pages(self, start: bytes, end: Optional[bytes],
                    page_size: int) -> Iterator[Tuple[bytes, bytes]]:
        # u32 count + worst-case (u16 len | 16 B key) records per page.
        page_bytes = 4 + page_size * (2 + MAX_INLINE_KEY)
        cursor = start
        first_page = True
        while True:
            mptr, cdw10, cdw11, cdw14 = key_field_words(cursor)
            ef = self.engine.submit_read(
                page_bytes, KvOpcode.LIST, cdw10=cdw10, cdw11=cdw11,
                mptr=mptr, cdw14=cdw14, cdw15=page_size, nsid=self.nsid)
            self._await(ef)
            if not ef.ok:
                raise ServiceError(
                    f"LIST failed with status {ef.status:#x}"
                    if ef.status is not None else "LIST timed out")
            keys = decode_key_list(ef.data if ef.data is not None else b"")
            progressed = False
            for key in keys:
                # LIST returns keys ≥ cursor; the page cursor is the
                # last key already yielded (16 B keys leave no room for
                # a "+1" successor cursor), so skip it on re-fetch.
                if not first_page and key <= cursor:
                    continue
                if end is not None and key >= end:
                    return
                progressed = True
                cursor = key
                future = KvFuture("get", key, -1, self.clock.now)
                self._get_through(key, future)
                self._await_serving(future)
                if future.not_found:
                    continue  # deleted after the page snapshot
                yield key, future.result()
            if not progressed or len(keys) < page_size:
                return
            first_page = False

    def _await(self, ef: CommandFuture) -> None:
        stall = 0
        while not ef.done:
            before = self.clock.now
            self.engine.poll()
            self._run_callbacks()
            stall = stall + 1 if self.clock.now <= before else 0
            if stall > 100:
                raise ServiceError("scan stalled awaiting the device")

    def _await_serving(self, future: KvFuture) -> None:
        stall = 0
        while not future.done:
            before = self.clock.now
            self.engine.poll()
            self._run_callbacks()
            stall = stall + 1 if self.clock.now <= before else 0
            if stall > 100:
                raise ServiceError("scan stalled awaiting a value read")
