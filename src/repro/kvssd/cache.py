"""Sharded invalidating read cache for the KV serving front-end.

The cache sits between the serving layer and the device: GET hits are
served from host memory with zero simulated-time cost and zero link
traffic, so the ablation's "cache" column measures exactly the traffic
the device never sees.  Coherence is invalidation-based — every PUT,
DELETE and batch commit drops the affected keys *before* the write is
acknowledged, so a later GET either hits a value at least as new as the
client's last acknowledged write, or misses and reads through.

Fills are versioned: a read-through records the shard's version when it
starts (:meth:`begin_fill`) and the fill is discarded if any
invalidation touched the shard in between (:meth:`commit_fill`).
Without this, a slow device read racing a newer write would install the
stale value *after* the invalidation that was supposed to kill it —
the classic look-aside cache bug.  Discarded fills are counted as
``fill_races``.

Sharding is by key hash.  With a single global LRU, a scan or a hot
tenant evicts everyone; per-shard LRU bounds the blast radius the same
way per-shard locks bound contention in a threaded server (the
simulation is single-threaded, so sharding here models capacity
partitioning, not locking).
"""

from __future__ import annotations

import zlib
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass
class CacheStats:
    """Counters for one :class:`ShardedReadCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0
    fills: int = 0
    #: Read-through fills discarded because an invalidation landed on
    #: the shard between ``begin_fill`` and ``commit_fill``.
    fill_races: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "fills": self.fills,
            "fill_races": self.fill_races,
            "hit_rate": round(self.hit_rate, 4),
        }


@dataclass
class _Shard:
    """One LRU shard plus its invalidation fences."""

    entries: "OrderedDict[bytes, bytes]" = field(default_factory=OrderedDict)
    #: Per-key invalidation counters: a fill started before the bump of
    #: *its* key is stale and must not be installed.  Keyed (rather than
    #: one shard-wide counter) so a busy neighbour key's writes don't
    #: discard every concurrent fill on the shard.
    versions: Dict[bytes, int] = field(default_factory=dict)
    #: Shard-wide epoch, bumped only by :meth:`ShardedReadCache.clear`.
    epoch: int = 0


class ShardedReadCache:
    """Bounded, sharded, invalidation-coherent LRU of key → value.

    ``capacity`` is the total entry budget, split evenly across
    ``shards`` (each shard gets at least one slot).  ``capacity == 0``
    constructs a permanently-empty cache whose lookups always miss —
    the service still short-circuits that case entirely, so a disabled
    cache is never consulted at all.
    """

    def __init__(self, capacity: int, shards: int = 8) -> None:
        if capacity < 0:
            raise ValueError(f"negative cache capacity {capacity}")
        if shards <= 0:
            raise ValueError(f"shard count must be positive, got {shards}")
        self.capacity = capacity
        self.num_shards = min(shards, capacity) if capacity else shards
        self.per_shard = (capacity // self.num_shards) if capacity else 0
        self._shards: List[_Shard] = [_Shard() for _ in range(self.num_shards)]
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    def _shard_for(self, key: bytes) -> _Shard:
        # crc32 rather than hash(): stable across runs (PYTHONHASHSEED),
        # so shard placement — and with it the eviction order — is
        # deterministic, as every reproduction artifact must be.
        return self._shards[zlib.crc32(key) % self.num_shards]

    # ------------------------------------------------------------------
    def lookup(self, key: bytes) -> Optional[bytes]:
        """Return the cached value, refreshing LRU recency; None on miss."""
        shard = self._shard_for(key)
        value = shard.entries.get(key)
        if value is None:
            self.stats.misses += 1
            return None
        shard.entries.move_to_end(key)
        self.stats.hits += 1
        return value

    def peek(self, key: bytes) -> Optional[bytes]:
        """Lookup without touching recency or stats (tests, monitor)."""
        return self._shard_for(key).entries.get(key)

    # ------------------------------------------------------------------
    # versioned read-through fill
    # ------------------------------------------------------------------
    def begin_fill(self, key: bytes) -> Tuple[bytes, int, int]:
        """Start a read-through for *key*; returns an opaque fill token."""
        shard = self._shard_for(key)
        return (key, shard.versions.get(key, 0), shard.epoch)

    def commit_fill(self, token: Tuple[bytes, int, int],
                    value: bytes) -> bool:
        """Install the read-through result unless *key* was invalidated
        since :meth:`begin_fill`.  Returns True if installed.
        """
        key, version, epoch = token
        if self.per_shard == 0:
            return False
        shard = self._shard_for(key)
        if shard.versions.get(key, 0) != version or shard.epoch != epoch:
            self.stats.fill_races += 1
            return False
        if key in shard.entries:
            shard.entries.move_to_end(key)
        shard.entries[key] = value
        self.stats.fills += 1
        while len(shard.entries) > self.per_shard:
            shard.entries.popitem(last=False)
            self.stats.evictions += 1
        return True

    # ------------------------------------------------------------------
    # coherence
    # ------------------------------------------------------------------
    def invalidate(self, key: bytes) -> bool:
        """Drop *key* and fence its in-flight fills."""
        shard = self._shard_for(key)
        shard.versions[key] = shard.versions.get(key, 0) + 1
        if shard.entries.pop(key, None) is not None:
            self.stats.invalidations += 1
            return True
        return False

    def clear(self) -> None:
        """Drop everything and fence all in-flight fills."""
        for shard in self._shards:
            shard.epoch += 1
            shard.versions.clear()
            shard.entries.clear()

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return sum(len(shard.entries) for shard in self._shards)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"ShardedReadCache(capacity={self.capacity}, "
                f"shards={self.num_shards}, len={len(self)}, "
                f"hit_rate={self.stats.hit_rate:.2%})")
