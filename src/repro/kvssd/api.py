"""Host-side key-value API over NVMe passthrough (paper §2.1, Figure 2).

The user-level library a KV-SSD application links against: PUT/GET/DELETE/
EXIST calls are translated into KV commands and submitted through the
NVMe driver.  The PUT payload path is pluggable — the Figure 6 benchmark
instantiates one store per transfer method and replays identical
workloads through each.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

from repro.kvssd.commands import (
    MAX_INLINE_KEY,
    decode_key_list,
    encode_batch_payload,
    encode_store_payload,
    make_delete_command,
    make_exist_command,
    make_list_command,
    make_retrieve_command,
)
from repro.host.driver import NvmeDriver
from repro.nvme.constants import KvOpcode, StatusCode, VendorOpcode
from repro.transfer.base import TransferMethod, TransferStats


class KvError(Exception):
    """Host-visible key-value operation failure."""


class KeyNotFoundError(KvError):
    """GET/DELETE/EXIST on a missing key."""


class KVStore:
    """A key-value store client bound to one KV-SSD."""

    def __init__(self, driver: NvmeDriver, put_method: TransferMethod,
                 qid: Optional[int] = None) -> None:
        self.driver = driver
        self.put_method = put_method
        self.qid = qid if qid is not None else driver.io_qids[0]

    # ------------------------------------------------------------------
    def put(self, key: bytes, value: bytes) -> TransferStats:
        """Store one pair; returns the transfer measurement for the op."""
        self._check_key(key)
        payload = encode_store_payload(key, value)
        stats = self.put_method.write(payload, opcode=KvOpcode.STORE,
                                      qid=self.qid)
        if not stats.ok:
            raise KvError(f"STORE failed with status {stats.status:#x}")
        return stats

    def get(self, key: bytes, max_value_len: int = 4096) -> bytes:
        """Fetch the value for *key* (keys are limited to 16 bytes)."""
        self._check_key(key)
        cmd = make_retrieve_command(key)
        _, buf = self.driver.submit_read_prp(cmd, max_value_len, self.qid)
        cqe = self.driver.wait(self.qid)
        if cqe.status == StatusCode.KV_KEY_NOT_FOUND:
            raise KeyNotFoundError(key.hex())
        if not cqe.ok:
            raise KvError(f"RETRIEVE failed with status {cqe.status:#x}")
        value_len = cqe.result
        if value_len > max_value_len:
            raise KvError(
                f"value of {value_len} B exceeds buffer of {max_value_len} B")
        return self.driver.memory.read(buf, value_len)

    def delete(self, key: bytes) -> None:
        self._check_key(key)
        cmd = make_delete_command(key)
        self.driver.submit_raw(cmd, self.qid)
        cqe = self.driver.wait(self.qid)
        if cqe.status == StatusCode.KV_KEY_NOT_FOUND:
            raise KeyNotFoundError(key.hex())
        if not cqe.ok:
            raise KvError(f"DELETE failed with status {cqe.status:#x}")

    def exists(self, key: bytes) -> bool:
        self._check_key(key)
        cmd = make_exist_command(key)
        self.driver.submit_raw(cmd, self.qid)
        cqe = self.driver.wait(self.qid)
        if cqe.status == StatusCode.KV_KEY_NOT_FOUND:
            return False
        if not cqe.ok:
            raise KvError(f"EXIST failed with status {cqe.status:#x}")
        return True

    def put_batch(self,
                  pairs: Iterable[Tuple[bytes, bytes]]) -> TransferStats:
        """Compound PUT: many pairs in one command (§2.2.1 bulk-PUT).

        Amortises per-command protocol cost at the price of per-pair
        persistence granularity — all pairs complete (and become durable)
        together.
        """
        pairs = list(pairs)
        for key, _ in pairs:
            self._check_key(key)
        payload = encode_batch_payload(pairs)
        stats = self.put_method.write(payload,
                                      opcode=VendorOpcode.KV_BATCH_STORE,
                                      qid=self.qid)
        if not stats.ok:
            raise KvError(f"batch STORE failed with status "
                          f"{stats.status:#x}")
        return stats

    def list_keys(self, start_key: bytes = b"\x00",
                  max_keys: int = 64, max_len: int = 8192) -> List[bytes]:
        """Enumerate up to *max_keys* keys ≥ *start_key*, in order."""
        self._check_key(start_key)
        cmd = make_list_command(start_key, max_keys)
        _, buf = self.driver.submit_read_prp(cmd, max_len, self.qid)
        cqe = self.driver.wait(self.qid)
        if not cqe.ok:
            raise KvError(f"LIST failed with status {cqe.status:#x}")
        # The CQE result reports the response's byte length (mirroring
        # get()'s value-length contract) — read exactly that, not the
        # whole worst-case buffer.
        list_len = cqe.result
        if list_len > max_len:
            raise KvError(
                f"key list of {list_len} B exceeds buffer of {max_len} B")
        raw = self.driver.memory.read(buf, list_len)
        return list(decode_key_list(raw))

    # ------------------------------------------------------------------
    @staticmethod
    def _check_key(key: bytes) -> None:
        if not key:
            raise KvError("empty key")
        if len(key) > MAX_INLINE_KEY:
            raise KvError(
                f"key of {len(key)} B exceeds the {MAX_INLINE_KEY} B "
                f"in-command key field")
