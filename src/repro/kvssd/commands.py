"""NVMe Key-Value command set codec (TP 4015-style, adapted to the model).

Encoding conventions used by this KV-SSD:

* **STORE**: the host→device payload is ``key_len u16 | key | value``;
  CDW14 additionally carries the key length so the device can validate.
  The payload travels by whichever transfer method is selected (PRP,
  BandSlim, ByteExpress, ...), which is exactly the data path the paper's
  Figure 6 compares.
* **RETRIEVE / DELETE / EXIST**: the key (≤16 B, the KV command set's
  fixed key field) rides inside the command itself — packed into the
  unused metadata pointer and CDW10/11 — with CDW14 holding the key
  length.  RETRIEVE returns the value through the normal read data path
  and reports the value length in the CQE result field.
"""

from __future__ import annotations

import struct
from typing import Iterable, List, Tuple

from repro.nvme.command import NvmeCommand
from repro.nvme.constants import KvOpcode

#: The NVMe KV command set's fixed in-command key field size.
MAX_INLINE_KEY = 16

_STORE_HEADER = struct.Struct("<H")


class KvEncodingError(Exception):
    """Key/value cannot be represented in the command set."""


def encode_store_payload(key: bytes, value: bytes) -> bytes:
    """Serialise a STORE payload (key_len | key | value)."""
    if not key:
        raise KvEncodingError("empty key")
    if len(key) > 0xFFFF:
        raise KvEncodingError("key exceeds 16-bit length field")
    return _STORE_HEADER.pack(len(key)) + key + value


def decode_store_payload(payload: bytes) -> Tuple[bytes, bytes]:
    """Inverse of :func:`encode_store_payload`."""
    if len(payload) < _STORE_HEADER.size:
        raise KvEncodingError("truncated STORE payload")
    (key_len,) = _STORE_HEADER.unpack_from(payload)
    body = payload[_STORE_HEADER.size:]
    if len(body) < key_len:
        raise KvEncodingError("STORE payload shorter than its key")
    return body[:key_len], body[key_len:]


def key_field_words(key: bytes) -> Tuple[int, int, int, int]:
    """Encode a ≤16 B key as its command-word tuple.

    Returns ``(mptr, cdw10, cdw11, cdw14)`` — the raw words callers
    that build SQEs field-by-field (the async engine's keyed path) pass
    straight through, with CDW14 carrying the key length.
    """
    if not key:
        raise KvEncodingError("empty key")
    if len(key) > MAX_INLINE_KEY:
        raise KvEncodingError(
            f"key of {len(key)} B exceeds the {MAX_INLINE_KEY} B key field")
    padded = key + b"\x00" * (MAX_INLINE_KEY - len(key))
    return (int.from_bytes(padded[:8], "little"),
            int.from_bytes(padded[8:12], "little"),
            int.from_bytes(padded[12:16], "little"),
            len(key))


def pack_key_fields(cmd: NvmeCommand, key: bytes) -> None:
    """Place a ≤16 B key into the command's key field (mptr + CDW10/11)."""
    cmd.mptr, cmd.cdw10, cmd.cdw11, cmd.cdw14 = key_field_words(key)


def unpack_key_fields(cmd: NvmeCommand) -> bytes:
    """Recover the in-command key (device side)."""
    key_len = cmd.cdw14
    if not 0 < key_len <= MAX_INLINE_KEY:
        raise KvEncodingError(f"bad in-command key length {key_len}")
    raw = (cmd.mptr.to_bytes(8, "little")
           + cmd.cdw10.to_bytes(4, "little")
           + cmd.cdw11.to_bytes(4, "little"))
    return raw[:key_len]


def make_store_command(key: bytes, nsid: int = 1) -> NvmeCommand:
    """A STORE command shell; the payload is attached by the driver."""
    cmd = NvmeCommand(opcode=KvOpcode.STORE, nsid=nsid)
    if len(key) > 0xFFFF:
        raise KvEncodingError("key exceeds 16-bit length field")
    cmd.cdw14 = len(key)
    return cmd


def make_retrieve_command(key: bytes, nsid: int = 1) -> NvmeCommand:
    cmd = NvmeCommand(opcode=KvOpcode.RETRIEVE, nsid=nsid)
    pack_key_fields(cmd, key)
    return cmd


def make_delete_command(key: bytes, nsid: int = 1) -> NvmeCommand:
    cmd = NvmeCommand(opcode=KvOpcode.DELETE, nsid=nsid)
    pack_key_fields(cmd, key)
    return cmd


def make_exist_command(key: bytes, nsid: int = 1) -> NvmeCommand:
    cmd = NvmeCommand(opcode=KvOpcode.EXIST, nsid=nsid)
    pack_key_fields(cmd, key)
    return cmd


def make_list_command(start_key: bytes, max_keys: int,
                      nsid: int = 1) -> NvmeCommand:
    """LIST: enumerate keys ≥ *start_key*; CDW15 bounds the count."""
    if max_keys <= 0:
        raise KvEncodingError("max_keys must be positive")
    cmd = NvmeCommand(opcode=KvOpcode.LIST, nsid=nsid, cdw15=max_keys)
    pack_key_fields(cmd, start_key)
    return cmd


_PAIR_HEADER = struct.Struct("<HI")


def encode_batch_payload(pairs: Iterable[Tuple[bytes, bytes]]) -> bytes:
    """Serialise a compound STORE: u16 count | (u16 klen|u32 vlen|k|v)*.

    The bulk-PUT alternative of §2.2.1 — one command carries many pairs,
    trading per-pair persistence granularity for protocol amortisation.
    """
    pairs = list(pairs)
    if not pairs:
        raise KvEncodingError("empty batch")
    if len(pairs) > 0xFFFF:
        raise KvEncodingError("batch exceeds 16-bit count field")
    out = bytearray(len(pairs).to_bytes(2, "little"))
    for key, value in pairs:
        if not key:
            raise KvEncodingError("empty key in batch")
        if len(key) > 0xFFFF or len(value) >= (1 << 32):
            raise KvEncodingError("key/value exceeds field width")
        out += _PAIR_HEADER.pack(len(key), len(value)) + key + value
    return bytes(out)


def decode_batch_payload(raw: bytes) -> List[Tuple[bytes, bytes]]:
    """Inverse of :func:`encode_batch_payload`."""
    if len(raw) < 2:
        raise KvEncodingError("truncated batch payload")
    count = int.from_bytes(raw[:2], "little")
    pairs: List[Tuple[bytes, bytes]] = []
    pos = 2
    for _ in range(count):
        if pos + _PAIR_HEADER.size > len(raw):
            raise KvEncodingError("truncated batch pair header")
        klen, vlen = _PAIR_HEADER.unpack_from(raw, pos)
        pos += _PAIR_HEADER.size
        if pos + klen + vlen > len(raw):
            raise KvEncodingError("truncated batch pair body")
        pairs.append((raw[pos:pos + klen], raw[pos + klen:pos + klen + vlen]))
        pos += klen + vlen
    return pairs


def decode_key_list(raw: bytes) -> Tuple[bytes, ...]:
    """Decode a LIST response: u32 count | (u16 key_len | key)*."""
    if len(raw) < 4:
        raise KvEncodingError("truncated key list")
    count = int.from_bytes(raw[:4], "little")
    keys: List[bytes] = []
    pos = 4
    for _ in range(count):
        if pos + 2 > len(raw):
            raise KvEncodingError("truncated key list entry")
        key_len = int.from_bytes(raw[pos:pos + 2], "little")
        pos += 2
        if pos + key_len > len(raw):
            raise KvEncodingError("truncated key in list")
        keys.append(raw[pos:pos + key_len])
        pos += key_len
    return tuple(keys)
