"""LSM-tree key index for the KV-SSD.

An iLSM/PinK-style in-storage LSM tree mapping keys to value-log pointers:
a sorted memtable absorbs writes; full memtables flush to immutable,
sorted SSTables (serialised to NAND through the FTL, so flush/compaction
I/O is charged to the NAND model); L0 tables may overlap and are searched
newest-first; deeper levels are kept as one non-overlapping sorted run
each and are merged by whole-level compaction when the level above
overflows.  Following PinK, the key/pointer entries of every level are
pinned in device DRAM, bounding read tail latency — lookups never touch
NAND for index data, only for values.

Tombstones implement deletion; iterators (SYSTOR '23's extension) walk a
merged view of memtable + all levels.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.kvssd.value_log import LogPointer
from repro.ssd.ftl import PageMappingFtl

#: Serialised index entry: key_len u16 | tombstone u8 | segment u32 |
#: offset u32 | length u32 | key bytes.
_ENTRY = struct.Struct("<HBIII")

#: Marker pointer stored for deletions.
TOMBSTONE = LogPointer(segment=0xFFFFFFFF, offset=0xFFFFFFFF, length=0)


def _serialize_entries(entries: List[Tuple[bytes, LogPointer]]) -> bytes:
    out = bytearray()
    for key, ptr in entries:
        tomb = 1 if ptr == TOMBSTONE else 0
        out += _ENTRY.pack(len(key), tomb, ptr.segment & 0xFFFFFFFF,
                           ptr.offset & 0xFFFFFFFF, ptr.length & 0xFFFFFFFF)
        out += key
    return bytes(out)


def _deserialize_entries(raw: bytes) -> List[Tuple[bytes, LogPointer]]:
    entries: List[Tuple[bytes, LogPointer]] = []
    pos = 0
    while pos < len(raw):
        key_len, tomb, seg, off, length = _ENTRY.unpack_from(raw, pos)
        pos += _ENTRY.size
        key = raw[pos:pos + key_len]
        pos += key_len
        ptr = TOMBSTONE if tomb else LogPointer(seg, off, length)
        entries.append((key, ptr))
    return entries


@dataclass
class SsTable:
    """One immutable sorted run, pinned in DRAM, persisted to NAND pages."""

    entries: List[Tuple[bytes, LogPointer]]
    lpns: List[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        keys = [k for k, _ in self.entries]
        if keys != sorted(keys):
            raise ValueError("SSTable entries must be sorted")

    @property
    def min_key(self) -> bytes:
        return self.entries[0][0]

    @property
    def max_key(self) -> bytes:
        return self.entries[-1][0]

    def get(self, key: bytes) -> Optional[LogPointer]:
        lo, hi = 0, len(self.entries)
        while lo < hi:
            mid = (lo + hi) // 2
            if self.entries[mid][0] < key:
                lo = mid + 1
            else:
                hi = mid
        if lo < len(self.entries) and self.entries[lo][0] == key:
            return self.entries[lo][1]
        return None


class LsmIndex:
    """The in-device LSM tree."""

    def __init__(self, ftl: PageMappingFtl, lpn_base: int,
                 memtable_entries: int = 4096,
                 l0_tables: int = 4, level_ratio: int = 4) -> None:
        if memtable_entries < 1:
            raise ValueError("memtable must hold at least one entry")
        self.ftl = ftl
        self.lpn_base = lpn_base
        self.memtable_entries = memtable_entries
        self.l0_tables = l0_tables
        self.level_ratio = level_ratio
        self._memtable: Dict[bytes, LogPointer] = {}
        #: levels[0] is L0 (list of possibly-overlapping tables, newest
        #: last); levels[i>0] hold at most one sorted run each.
        self.levels: List[List[SsTable]] = [[]]
        self._next_lpn = lpn_base
        self.flushes = 0
        self.compactions = 0

    # ------------------------------------------------------------------
    # write path
    # ------------------------------------------------------------------
    def put(self, key: bytes, ptr: LogPointer) -> None:
        if not key:
            raise ValueError("empty key")
        self._memtable[key] = ptr
        if len(self._memtable) >= self.memtable_entries:
            self.flush_memtable()

    def delete(self, key: bytes) -> None:
        self.put(key, TOMBSTONE)

    def flush_memtable(self) -> None:
        if not self._memtable:
            return
        entries = sorted(self._memtable.items())
        self._memtable.clear()
        table = self._persist(SsTable(entries))
        self.levels[0].append(table)
        self.flushes += 1
        if len(self.levels[0]) > self.l0_tables:
            self._compact(0)

    def _persist(self, table: SsTable) -> SsTable:
        """Write the table's serialised form to NAND pages via the FTL."""
        raw = _serialize_entries(table.entries)
        page_bytes = self.ftl.nand.geometry.page_bytes
        for off in range(0, len(raw), page_bytes):
            lpn = self._next_lpn
            self._next_lpn += 1
            self.ftl.write(lpn, raw[off:off + page_bytes])
            table.lpns.append(lpn)
        return table

    def _compact(self, level: int) -> None:
        """Merge *level* into *level*+1 as one fresh sorted run."""
        while len(self.levels) <= level + 1:
            self.levels.append([])
        sources = self.levels[level] + self.levels[level + 1]
        merged: Dict[bytes, LogPointer] = {}
        # Oldest-first so newer tables overwrite older mappings; L0 is
        # ordered oldest→newest, deeper levels hold a single older run.
        for table in self.levels[level + 1] + self.levels[level]:
            for key, ptr in table.entries:
                merged[key] = ptr
        for table in sources:
            for lpn in table.lpns:
                self.ftl.trim(lpn)
        is_last = (level + 1 == len(self.levels) - 1)
        entries = sorted((k, p) for k, p in merged.items()
                         if not (is_last and p == TOMBSTONE))
        self.levels[level] = []
        self.levels[level + 1] = (
            [self._persist(SsTable(entries))] if entries else [])
        self.compactions += 1
        # Cascade when the level run grows beyond the size ratio.
        limit = self.memtable_entries * (self.level_ratio ** (level + 1))
        run = self.levels[level + 1]
        if run and len(run[0].entries) > limit:
            self._compact(level + 1)

    # ------------------------------------------------------------------
    # read path
    # ------------------------------------------------------------------
    def get(self, key: bytes) -> Optional[LogPointer]:
        """Lookup; returns None for missing or deleted keys."""
        ptr = self._memtable.get(key)
        if ptr is None:
            for table in reversed(self.levels[0]):
                if table.min_key <= key <= table.max_key:
                    ptr = table.get(key)
                    if ptr is not None:
                        break
        if ptr is None:
            for level in self.levels[1:]:
                for table in level:
                    if table.min_key <= key <= table.max_key:
                        ptr = table.get(key)
                if ptr is not None:
                    break
        if ptr is None or ptr == TOMBSTONE:
            return None
        return ptr

    def scan(self, start: bytes, end: bytes) -> Iterator[Tuple[bytes, LogPointer]]:
        """Merged in-order iteration over [start, end) (SYSTOR '23 API)."""
        if start >= end:
            return
        view: Dict[bytes, LogPointer] = {}
        for level in reversed(self.levels[1:]):
            for table in level:
                for key, ptr in table.entries:
                    if start <= key < end:
                        view[key] = ptr
        for table in self.levels[0]:
            for key, ptr in table.entries:
                if start <= key < end:
                    view[key] = ptr
        for key, ptr in self._memtable.items():
            if start <= key < end:
                view[key] = ptr
        for key in sorted(view):
            if view[key] != TOMBSTONE:
                yield key, view[key]

    # ------------------------------------------------------------------
    # persistence (repro.durability) — the memtable and the DRAM-pinned
    # level entries are DEVICE_VOLATILE: a power cut loses them all, and
    # recovery rebuilds the index by replaying the value log.
    # ------------------------------------------------------------------
    def snapshot(self) -> object:
        return {
            "memtable": dict(self._memtable),
            "levels": [[(list(t.entries), list(t.lpns)) for t in level]
                       for level in self.levels],
            "next_lpn": self._next_lpn,
            "counters": (self.flushes, self.compactions),
        }

    def restore(self, state: object) -> None:
        assert isinstance(state, dict)
        self._memtable = dict(state["memtable"])
        self.levels = [
            [SsTable(entries=list(entries), lpns=list(lpns))
             for entries, lpns in level]
            for level in state["levels"]]
        self._next_lpn = state["next_lpn"]
        self.flushes, self.compactions = state["counters"]

    def scrub(self) -> None:
        """Drop every in-DRAM structure; the LPN window resets too.

        The index keeps its identity (ftl, lpn_base, tuning) so replay
        re-persists SSTables into the same logical window the stale
        pre-crash tables occupied — those were trimmed or are simply
        overwritten as replay flushes.
        """
        for level in self.levels:
            for table in level:
                for lpn in table.lpns:
                    self.ftl.trim(lpn)  # no-op when the FTL was scrubbed
        self._memtable = {}
        self.levels = [[]]
        self._next_lpn = self.lpn_base

    # ------------------------------------------------------------------
    @property
    def memtable_size(self) -> int:
        return len(self._memtable)

    @property
    def total_entries(self) -> int:
        """Live index entries across memtable and all levels (with dups)."""
        total = len(self._memtable)
        for level in self.levels:
            for table in level:
                total += len(table.entries)
        return total
