"""In-flight command table: futures keyed by (qid, cid).

The table is the engine's source of truth for outstanding work.  Every
asynchronous submission registers an :class:`InFlightCommand` under the
(queue id, command id) pair its CQE will carry; the completion reactor
pops entries as CQEs arrive and resolves their futures — out of order,
exactly as NVMe permits.

Entries also carry everything the recovery paths need to *re-issue* a
command from scratch: the original payload and command words, the
attempt count, the first-submission timestamp, and the absolute
deadline derived from the driver's :class:`~repro.host.driver.RetryPolicy`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.datapath import names as dp_names
from repro.nvme.completion import NvmeCompletion

#: Future lifecycle states.
PENDING = "pending"
OK = "ok"
FAILED = "failed"
TIMED_OUT = "timed_out"


class FutureError(Exception):
    """Misuse of a command future (double resolve, result before done)."""


class CommandFuture:
    """Single-assignment result slot for one asynchronous command.

    The simulation is single-threaded, so this is a plain state machine
    rather than a synchronised primitive: ``done`` flips exactly once,
    when the reactor resolves or fails the command.
    """

    __slots__ = ("state", "cqe", "status", "latency_ns", "attempts",
                 "method_used", "stream", "payload_len", "submit_ns",
                 "data")

    def __init__(self, stream: Optional[int] = None,
                 payload_len: int = 0) -> None:
        self.state = PENDING
        self.cqe: Optional[NvmeCompletion] = None
        self.status: Optional[int] = None
        self.latency_ns: float = 0.0
        self.attempts: int = 0
        #: Transfer method of the final (resolving) submission — may
        #: differ from the requested one after a breaker fallback.
        self.method_used: Optional[str] = None
        self.stream = stream
        self.payload_len = payload_len
        self.submit_ns: float = 0.0
        #: Device→host data of a read-style command (``submit_read``),
        #: copied out of the command's private DMA buffer at completion;
        #: None for writes and for reads that returned no data.
        self.data: Optional[bytes] = None

    @property
    def done(self) -> bool:
        return self.state != PENDING

    @property
    def ok(self) -> bool:
        return self.state == OK

    def result(self) -> NvmeCompletion:
        """The resolving CQE; raises if the command is still pending or
        produced no completion at all (hard timeout)."""
        if not self.done:
            raise FutureError("command still in flight")
        if self.cqe is None:
            raise FutureError("command timed out without a completion")
        return self.cqe

    def _resolve(self, state: str, cqe: Optional[NvmeCompletion],
                 latency_ns: float) -> None:
        if self.done:
            raise FutureError(f"future already resolved ({self.state})")
        self.state = state
        self.cqe = cqe
        self.status = cqe.status if cqe is not None else None
        self.latency_ns = latency_ns

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"CommandFuture({self.state}, status={self.status}, "
                f"attempts={self.attempts})")


@dataclass(slots=True)
class InFlightCommand:
    """One outstanding command plus everything needed to re-issue it."""

    future: CommandFuture
    #: Requested transfer method ("byteexpress" | "prp" | "bandslim").
    method: str
    opcode: int
    payload: bytes
    cdw10: int = 0
    cdw11: int = 0
    nsid: int = 1
    stream: Optional[int] = None
    #: Extra command words for keyed/read-style commands (NVMe-KV packs
    #: the key into mptr + CDW10/11 with CDW14 holding the key length,
    #: CDW15 a per-opcode bound such as LIST's max key count).
    mptr: int = 0
    cdw14: int = 0
    cdw15: int = 0
    #: Device→host return-buffer size; 0 marks a write (or a keyed
    #: command with no data return at all, e.g. DELETE/EXIST).
    read_len: int = 0
    #: Private contiguous DMA pages backing the read return, allocated
    #: at first submission and reused across retries; freed by the
    #: reactor when the future resolves.
    read_pages: Tuple[int, ...] = ()
    #: Method actually used for the current submission (breaker fallback
    #: may downgrade an inline request to "prp" per attempt).
    method_used: str = ""
    #: (qid, cid) of the current submission; None while parked for retry.
    key: Optional[Tuple[int, int]] = None
    #: Tagged-mode payload id of the current submission, if any.
    payload_id: Optional[int] = None
    attempts: int = 0
    first_submit_ns: float = 0.0
    last_submit_ns: float = 0.0
    deadline_ns: float = float("inf")
    #: Absolute simulated time before which a parked entry must not be
    #: resubmitted (exponential backoff).
    retry_at_ns: float = 0.0

    @property
    def qid(self) -> Optional[int]:
        return self.key[0] if self.key else None

    def fail(self, cqe: Optional[NvmeCompletion], now_ns: float) -> None:
        state = FAILED if cqe is not None else TIMED_OUT
        self.future.attempts = self.attempts
        self.future.method_used = self.method_used
        self.future._resolve(state, cqe, now_ns - self.first_submit_ns)

    def resolve(self, cqe: NvmeCompletion, now_ns: float) -> None:
        self.future.attempts = self.attempts
        self.future.method_used = self.method_used
        state = OK if cqe.ok else FAILED
        self.future._resolve(state, cqe, now_ns - self.first_submit_ns)

    @property
    def is_inline(self) -> bool:
        """Did the *current* submission use an inline transfer path?"""
        return self.method_used in (dp_names.BYTEEXPRESS, dp_names.BANDSLIM)

    @property
    def is_keyed(self) -> bool:
        """Submitted through ``submit_read`` (no host→device payload)?"""
        return not self.payload

    def release_read_buffer(self, memory: "object") -> None:
        """Free the private read-return pages, if any (idempotent)."""
        for page in self.read_pages:
            memory.free_page(page)  # type: ignore[attr-defined]
        self.read_pages = ()


class InFlightTable:
    """All commands currently owned by the device, keyed by (qid, cid).

    Mirrors the driver's live-CID sets at a higher level: the driver
    tracks which CIDs are unavailable, the table tracks *what the host
    is waiting for* under each of them.  ``high_water`` records the
    deepest the pipeline ever got — the scaling reports surface it to
    show the engine actually sustained QD ≫ 1.
    """

    def __init__(self) -> None:
        self._entries: Dict[Tuple[int, int], InFlightCommand] = {}
        self._per_queue: Dict[int, int] = {}
        self.high_water = 0

    def add(self, entry: InFlightCommand) -> None:
        if entry.key is None:
            raise ValueError("entry has no (qid, cid) key")
        if entry.key in self._entries:
            raise ValueError(f"duplicate in-flight key {entry.key}")
        self._entries[entry.key] = entry
        self._per_queue[entry.key[0]] = self._per_queue.get(entry.key[0], 0) + 1
        self.high_water = max(self.high_water, len(self._entries))

    def pop(self, key: Tuple[int, int]) -> Optional[InFlightCommand]:
        entry = self._entries.pop(key, None)
        if entry is not None:
            self._per_queue[key[0]] -= 1
        return entry

    def get(self, key: Tuple[int, int]) -> Optional[InFlightCommand]:
        return self._entries.get(key)

    def pending_on(self, qid: int) -> int:
        return self._per_queue.get(qid, 0)

    def entries(self) -> List[InFlightCommand]:
        """Snapshot of current entries (safe to mutate the table while
        iterating the returned list)."""
        return list(self._entries.values())

    def __len__(self) -> int:
        return len(self._entries)

    def __bool__(self) -> bool:
        return bool(self._entries)

    def __iter__(self) -> Iterator[InFlightCommand]:
        return iter(list(self._entries.values()))
