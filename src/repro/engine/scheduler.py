"""Multi-queue submission scheduler with per-queue QD caps.

Owns the engine's view of its N queue pairs and decides where each new
command goes.  Three placement policies:

``round_robin``
    Rotate over the queue set, skipping queues at their QD cap — the
    stock blk-mq behaviour for untagged requests.
``least_inflight``
    Place on the queue with the fewest outstanding commands (ties break
    to the earliest queue in the set) — join-the-shortest-queue, best
    for heterogeneous command costs.
``affinity``
    Pin each client stream to ``qids[stream % N]`` — models per-core
    queue affinity, and is what keeps ByteExpress's queue-local chunk
    fetching meaningful when many streams share the engine.  Strict: if
    the stream's queue is saturated the scheduler reports backpressure
    rather than spilling onto a foreign queue.

A ``None`` pick means *backpressure*: every eligible queue is at its QD
cap (or cannot hold the submission's SQE footprint).  The engine reacts
by reaping completions, not by queueing unboundedly.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

POLICIES = ("round_robin", "least_inflight", "affinity")


class SchedulerError(Exception):
    """Invalid scheduler configuration or accounting misuse."""


class MultiQueueScheduler:
    """Placement of submissions across N queue pairs under QD caps."""

    def __init__(self, qids: Sequence[int], qd_cap: int,
                 policy: str = "round_robin") -> None:
        if not qids:
            raise SchedulerError("scheduler needs at least one queue")
        if len(set(qids)) != len(qids):
            raise SchedulerError(f"duplicate qids: {list(qids)}")
        if qd_cap < 1:
            raise SchedulerError(f"qd_cap must be >= 1, got {qd_cap}")
        if policy not in POLICIES:
            raise SchedulerError(
                f"unknown policy {policy!r}; expected one of {POLICIES}")
        self.qids: List[int] = list(qids)
        self.qd_cap = qd_cap
        self.policy = policy
        self.inflight: Dict[int, int] = {qid: 0 for qid in self.qids}
        self._rr_next = 0
        #: Picks that found no eligible queue (backpressure events).
        self.rejections = 0

    # ------------------------------------------------------------------
    def _eligible(self, qid: int,
                  fits: Optional[Callable[[int], bool]]) -> bool:
        if self.inflight[qid] >= self.qd_cap:
            return False
        return fits(qid) if fits is not None else True

    def pick(self, stream: Optional[int] = None,
             fits: Optional[Callable[[int], bool]] = None) -> Optional[int]:
        """Choose a queue for one submission, or ``None`` on backpressure.

        *fits(qid)* lets the caller veto queues that cannot hold the
        submission's SQE footprint (an inline command plus its chunks
        needs contiguous SQ slots; a QD cap alone cannot see that).
        """
        if self.policy == "affinity":
            if stream is None:
                raise SchedulerError(
                    "affinity policy requires a stream id on every pick")
            qid = self.qids[stream % len(self.qids)]
            if self._eligible(qid, fits):
                return qid
            self.rejections += 1
            return None

        if self.policy == "least_inflight":
            best: Optional[int] = None
            for qid in self.qids:
                if not self._eligible(qid, fits):
                    continue
                if best is None or self.inflight[qid] < self.inflight[best]:
                    best = qid
            if best is None:
                self.rejections += 1
            return best

        # round_robin: first eligible queue after the rotation cursor;
        # the cursor advances past the chosen queue so consecutive picks
        # spread across the set even when all queues are eligible.
        # (Eligibility is inlined from ``_eligible`` — this loop runs
        # once per submission.)
        qids = self.qids
        inflight = self.inflight
        cap = self.qd_cap
        n = len(qids)
        start = self._rr_next
        for i in range(n):
            idx = (start + i) % n
            qid = qids[idx]
            if inflight[qid] >= cap:
                continue
            if fits is not None and not fits(qid):
                continue
            self._rr_next = (idx + 1) % n
            return qid
        self.rejections += 1
        return None

    # ------------------------------------------------------------------
    def note_submit(self, qid: int) -> None:
        if qid not in self.inflight:
            raise SchedulerError(f"qid {qid} is not owned by this scheduler")
        self.inflight[qid] += 1

    def note_complete(self, qid: int) -> None:
        if self.inflight.get(qid, 0) <= 0:
            raise SchedulerError(
                f"completion accounting underflow on qid {qid}")
        self.inflight[qid] -= 1

    @property
    def total_inflight(self) -> int:
        return sum(self.inflight.values())

    @property
    def saturated(self) -> bool:
        """True when every queue is at its QD cap."""
        return all(v >= self.qd_cap for v in self.inflight.values())
