"""repro.engine — asynchronous multi-queue I/O engine.

The synchronous driver issues one command and blocks for its completion:
queue depth 1, forever.  This package layers deeply-pipelined submission
on top of the same driver/device stack:

* :mod:`repro.engine.table` — the in-flight command table: per-command
  futures keyed by (qid, cid), with deadlines and retry state.
* :mod:`repro.engine.scheduler` — the multi-queue scheduler: N I/O queue
  pairs, submission placement policies (round-robin, least-inflight,
  stream affinity), per-queue QD caps with backpressure.
* :mod:`repro.engine.reactor` — the completion reactor: drains CQs as
  CQEs arrive (phase-bit driven), resolves futures out of order, and
  feeds the RetryPolicy/CircuitBreaker recovery paths at QD ≫ 1.
* :mod:`repro.engine.engine` — :class:`IoEngine`, the façade tying the
  three together.
* :mod:`repro.engine.loadgen` — the concurrent load generator: many
  independent client streams multiplexed onto the queue set, with
  per-stream and aggregate latency/throughput/traffic reports.
"""

from repro.engine.engine import EngineSaturatedError, EngineStats, IoEngine
from repro.engine.loadgen import LoadGenerator, LoadReport, StreamSpec
from repro.engine.scheduler import (
    POLICIES,
    MultiQueueScheduler,
    SchedulerError,
)
from repro.engine.table import CommandFuture, InFlightCommand, InFlightTable

__all__ = [
    "CommandFuture",
    "EngineSaturatedError",
    "EngineStats",
    "InFlightCommand",
    "InFlightTable",
    "IoEngine",
    "LoadGenerator",
    "LoadReport",
    "MultiQueueScheduler",
    "POLICIES",
    "SchedulerError",
    "StreamSpec",
]
