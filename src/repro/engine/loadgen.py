"""Concurrent load generator: many client streams over one engine.

Each :class:`StreamSpec` describes an independent client — its own
closed-loop concurrency (outstanding-ops window), its own seeded
arrival process (exponential think times between a completion and the
next issue), and its own payload-size distribution (fixed, uniform, or
the MixGraph generalised-Pareto value sizes from
:mod:`repro.workloads.mixgraph`).  The generator multiplexes all
streams onto the engine's queue set and reports per-stream and
aggregate latency (p50/p99/p99.9), throughput and PCIe traffic.

Everything is seeded: two runs with the same specs and seed produce
byte-identical reports, which the determinism tests and the scaling
ablation rely on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.datapath import names as dp_names
from repro.engine.engine import IoEngine
from repro.engine.table import CommandFuture, TIMED_OUT
from repro.metrics.stats import LatencySummary, summarize_latencies
from repro.metrics.reporting import format_table
from repro.nvme.constants import PAGE_SIZE, IoOpcode
from repro.sim.rng import make_rng
from repro.workloads.mixgraph import GPD_SCALE, GPD_SHAPE


class LoadGenError(Exception):
    """Bad stream specification or a wedged run."""


@dataclass(frozen=True)
class StreamSpec:
    """One client stream.

    ``size`` accepts ``"fixed:N"``, ``"uniform:LO:HI"`` or
    ``"mixgraph"`` (GPD value sizes, clamped to *max_size*).
    ``concurrency`` is the stream's closed-loop window: how many of its
    ops may be outstanding at once.  ``think_ns`` is the mean of an
    exponential pause between one completion and the next issue
    (0 = issue back-to-back).
    """

    stream_id: int
    ops: int
    size: str = "fixed:64"
    concurrency: int = 1
    think_ns: float = 0.0
    method: Optional[str] = None
    max_size: int = 4096

    def __post_init__(self) -> None:
        if self.ops < 1:
            raise LoadGenError("stream needs at least one op")
        if self.concurrency < 1:
            raise LoadGenError("stream concurrency must be >= 1")
        if self.think_ns < 0:
            raise LoadGenError("think time must be non-negative")


#: Grow-only index ramp shared by every payload fill; 4 KB covers the
#: default ``max_size``, larger requests regrow it once.
_PAYLOAD_RAMP = np.arange(4096, dtype=np.int64)


#: Payload memo: the fill depends only on ``base % 256`` and the size, so
#: at most 256 distinct payloads exist per size class.
_PAYLOAD_CACHE: dict = {}


def _payload_bytes(base: int, size: int) -> bytes:
    """Deterministic payload fill, ``(base + i) & 0xFF`` per byte.

    Vectorized but byte-identical to the scalar generator expression it
    replaced — golden fingerprints depend on the exact payload bytes.
    """
    global _PAYLOAD_RAMP
    key = (base & 0xFF, size)
    data = _PAYLOAD_CACHE.get(key)
    if data is None:
        if size > _PAYLOAD_RAMP.size:
            _PAYLOAD_RAMP = np.arange(size, dtype=np.int64)
        if len(_PAYLOAD_CACHE) >= 8192:
            _PAYLOAD_CACHE.clear()
        data = _PAYLOAD_CACHE[key] = (
            ((base + _PAYLOAD_RAMP[:size]) & 0xFF)
            .astype(np.uint8).tobytes())
    return data


def _draw_sizes(spec: StreamSpec, seed: int) -> np.ndarray:
    """Pre-draw every payload size for one stream, seeded per stream."""
    rng = make_rng(seed, f"loadgen.sizes.{spec.stream_id}")
    kind, _, rest = spec.size.partition(":")
    if kind == "fixed":
        n = int(rest) if rest else 64
        if not 0 < n <= spec.max_size:
            raise LoadGenError(f"fixed size {n} out of range")
        return np.full(spec.ops, n, dtype=np.int64)
    if kind == "uniform":
        lo_s, _, hi_s = rest.partition(":")
        lo, hi = int(lo_s), int(hi_s)
        if not 0 < lo <= hi <= spec.max_size:
            raise LoadGenError(f"bad uniform range {lo}..{hi}")
        return rng.integers(lo, hi + 1, size=spec.ops, dtype=np.int64)
    if kind == "mixgraph":
        u = rng.random(spec.ops)
        sizes = GPD_SCALE / GPD_SHAPE * ((1.0 - u) ** -GPD_SHAPE - 1.0)
        return np.clip(sizes.astype(np.int64) + 1, 1, spec.max_size)
    raise LoadGenError(f"unknown size distribution {spec.size!r}")


@dataclass
class _StreamState:
    spec: StreamSpec
    sizes: np.ndarray
    think: Optional[np.ndarray]
    issued: int = 0
    start_ns: float = 0.0
    end_ns: float = 0.0
    next_issue_ns: float = 0.0
    outstanding: List[CommandFuture] = field(default_factory=list)
    latencies: List[float] = field(default_factory=list)
    ok: int = 0
    errors: int = 0
    timeouts: int = 0

    @property
    def finished(self) -> bool:
        return self.issued >= self.spec.ops and not self.outstanding

    def can_issue(self, now_ns: float) -> bool:
        return (self.issued < self.spec.ops
                and len(self.outstanding) < self.spec.concurrency
                and now_ns >= self.next_issue_ns)


@dataclass(frozen=True)
class StreamReport:
    stream_id: int
    method: str
    ops: int
    ok: int
    errors: int
    timeouts: int
    latency: LatencySummary
    elapsed_ns: float

    @property
    def kops(self) -> float:
        """Completed ops per millisecond of the stream's active window."""
        if self.elapsed_ns <= 0:
            return 0.0
        return self.ok / self.elapsed_ns * 1e6


@dataclass(frozen=True)
class LoadReport:
    """Aggregate outcome of one load-generator run."""

    streams: Tuple[StreamReport, ...]
    elapsed_ns: float
    total_ops: int
    total_ok: int
    total_errors: int
    total_timeouts: int
    latency: LatencySummary
    pcie_bytes: int
    engine_stats: dict
    inflight_high_water: int

    @property
    def kiops(self) -> float:
        """Aggregate completed ops per millisecond of simulated time."""
        if self.elapsed_ns <= 0:
            return 0.0
        return self.total_ok / self.elapsed_ns * 1e6

    @property
    def bytes_per_op(self) -> float:
        return self.pcie_bytes / self.total_ok if self.total_ok else 0.0

    def table(self) -> str:
        rows = []
        for s in self.streams:
            rows.append([
                s.stream_id, s.method, s.ops, s.ok,
                s.errors + s.timeouts,
                f"{s.latency.p50 / 1000:.2f}",
                f"{s.latency.p99 / 1000:.2f}",
                f"{s.latency.p999 / 1000:.2f}",
                f"{s.kops:.1f}",
            ])
        body = format_table(
            ["stream", "method", "ops", "ok", "fail",
             "p50(us)", "p99(us)", "p99.9(us)", "kops"],
            rows, title="per-stream results")
        agg = (f"aggregate: {self.total_ok}/{self.total_ops} ok, "
               f"{self.kiops:.1f} kops, "
               f"p50={self.latency.p50 / 1000:.2f}us "
               f"p99={self.latency.p99 / 1000:.2f}us "
               f"p99.9={self.latency.p999 / 1000:.2f}us, "
               f"{self.bytes_per_op:.1f} PCIe B/op, "
               f"max inflight {self.inflight_high_water}")
        return body + "\n" + agg


class LoadGenerator:
    """Drives many client streams through one :class:`IoEngine`."""

    def __init__(self, engine: IoEngine, streams: List[StreamSpec],
                 seed: int = 0x5EED, method: str = dp_names.BYTEEXPRESS,
                 opcode: int = IoOpcode.WRITE) -> None:
        if not streams:
            raise LoadGenError("load generator needs at least one stream")
        ids = [s.stream_id for s in streams]
        if len(set(ids)) != len(ids):
            raise LoadGenError(f"duplicate stream ids: {ids}")
        self.engine = engine
        self.seed = seed
        self.method = method
        self.opcode = opcode
        self._states: List[_StreamState] = []
        for spec in streams:
            think = None
            if spec.think_ns > 0:
                rng = make_rng(seed, f"loadgen.think.{spec.stream_id}")
                think = rng.exponential(spec.think_ns, size=spec.ops)
            self._states.append(_StreamState(
                spec=spec, sizes=_draw_sizes(spec, seed), think=think))
        #: Distinct write offset per op — concurrent writes must not
        #: overlap, or verification of the backing store is meaningless.
        self._next_offset = 0

    # ------------------------------------------------------------------
    def _issue(self, state: _StreamState) -> None:
        spec = state.spec
        size = int(state.sizes[state.issued])
        offset = self._next_offset
        self._next_offset += PAGE_SIZE
        payload = _payload_bytes(
            state.issued * 131 + spec.stream_id * 31, size)
        future = self.engine.submit(
            payload, method=spec.method or self.method, opcode=self.opcode,
            cdw10=offset & 0xFFFFFFFF, stream=spec.stream_id)
        if state.issued == 0:
            state.start_ns = future.submit_ns
        if state.think is not None:
            state.next_issue_ns = (self.engine.clock.now
                                   + float(state.think[state.issued]))
        state.outstanding.append(future)
        state.issued += 1

    def _harvest(self, state: _StreamState) -> int:
        # Single pass: ``f.done`` is a property, and this scan runs once
        # per poll round per stream over every outstanding future.
        harvested = 0
        still: List[CommandFuture] = []
        for f in state.outstanding:
            if not f.done:
                still.append(f)
                continue
            harvested += 1
            if f.ok:
                state.ok += 1
                state.latencies.append(f.latency_ns)
            elif f.state == TIMED_OUT:
                state.timeouts += 1
            else:
                state.errors += 1
        if not harvested:
            return 0
        state.outstanding = still
        if state.finished:
            state.end_ns = self.engine.clock.now
        return harvested

    def run(self) -> LoadReport:
        """Run every stream to completion; returns the report."""
        engine = self.engine
        clock = engine.clock
        counter = engine.driver.link.counter
        start_ns, start_bytes = clock.now, counter.total_bytes

        stall = 0
        while not all(s.finished for s in self._states):
            progressed = 0
            for state in self._states:
                while state.can_issue(clock.now):
                    self._issue(state)
                    progressed += 1
            resolved = engine.poll()
            for state in self._states:
                progressed += self._harvest(state)
            if progressed == 0 and resolved == 0:
                if engine.table or engine.parked:
                    stall += 1
                    if stall > 100:
                        raise LoadGenError("load generator wedged")
                    continue
                # Every stream is merely thinking: jump to the earliest
                # next arrival instead of spinning.
                waiting = [s.next_issue_ns for s in self._states
                           if not s.finished]
                if not waiting:
                    break
                clock.advance_to(min(waiting))
            else:
                stall = 0

        elapsed_ns = clock.now - start_ns
        reports = []
        all_lat: List[float] = []
        for state in self._states:
            all_lat.extend(state.latencies)
            lat = (summarize_latencies(state.latencies)
                   if state.latencies else LatencySummary.empty())
            reports.append(StreamReport(
                stream_id=state.spec.stream_id,
                method=state.spec.method or self.method,
                ops=state.spec.ops, ok=state.ok, errors=state.errors,
                timeouts=state.timeouts, latency=lat,
                elapsed_ns=max(state.end_ns - state.start_ns, 0.0)))
        agg_lat = (summarize_latencies(all_lat) if all_lat
                   else LatencySummary.empty())
        return LoadReport(
            streams=tuple(reports),
            elapsed_ns=elapsed_ns,
            total_ops=sum(s.spec.ops for s in self._states),
            total_ok=sum(s.ok for s in self._states),
            total_errors=sum(s.errors for s in self._states),
            total_timeouts=sum(s.timeouts for s in self._states),
            latency=agg_lat,
            pcie_bytes=counter.total_bytes - start_bytes,
            engine_stats=engine.stats.as_dict(),
            inflight_high_water=engine.table.high_water)
