"""The asynchronous I/O engine façade.

:class:`IoEngine` ties the in-flight table, the multi-queue scheduler
and the completion reactor to one driver/device pair:

* ``submit()`` places a write on a queue chosen by the scheduler,
  registers it in the table, and returns a :class:`CommandFuture`
  immediately — no per-command wait.  Doorbells are deferred: the next
  ``poll()`` publishes all dirty tails with one MMIO write per queue.
* ``poll()`` runs one reactor round (kick, drive, reap, recover).
* ``drain()`` polls until every future is resolved.

Backpressure is built in: when every eligible queue is at its QD cap
(or lacks SQ slots for the submission's footprint) the engine reaps
completions inline until capacity frees, so memory and CID usage stay
bounded no matter how fast the caller submits.

Transfer methods are the write paths whose submission maps onto SQ
entries: ``byteexpress`` (queue-local or tagged chunks, following the
controller's mode), ``prp`` (stock baseline, private per-command DMA
buffers), and ``bandslim`` (fragment command sequences; requires the
device layer from :mod:`repro.transfer.bandslim` to be registered).
Inline methods respect the driver's circuit breaker per submission and
are downgraded to PRP while it is open.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set

from repro.datapath import names as dp_names
from repro.datapath import registry as datapath_registry
from repro.engine.reactor import CompletionReactor
from repro.engine.scheduler import MultiQueueScheduler
from repro.engine.table import CommandFuture, InFlightCommand, InFlightTable
from repro.host.driver import NvmeDriver
from repro.nvme.command import NvmeCommand
from repro.nvme.constants import (
    BANDSLIM_FRAGMENT_CAPACITY,
    DEFAULT_NSID,
    PAGE_SIZE,
    IoOpcode,
    VendorOpcode,
)
from repro.pcie.traffic import EVT_INLINE_FALLBACK
from repro.ssd.controller import MODE_TAGGED
from repro.ssd.device import OpenSsd

def engine_methods() -> tuple:
    """Write paths the engine can drive asynchronously — every registry
    method whose caps declare ``engine_capable``."""
    return datapath_registry.method_names(engine_capable=True)


class EngineError(Exception):
    """Engine misuse or unrecoverable engine state."""


class EngineSaturatedError(EngineError):
    """A submission can never be placed (footprint exceeds every queue)."""


@dataclass
class EngineStats:
    """Aggregate engine counters (recovery events mirror the driver's)."""

    submitted: int = 0
    completed: int = 0
    failed: int = 0
    retries: int = 0
    timeouts: int = 0
    re_rings: int = 0
    inline_fallbacks: int = 0
    breaker_trips: int = 0
    stale_completions: int = 0
    backpressure_waits: int = 0

    def as_dict(self) -> Dict[str, int]:
        return dict(vars(self))


class IoEngine:
    """Asynchronous multi-queue submission over one driver/device pair."""

    def __init__(self, ssd: OpenSsd, driver: NvmeDriver,
                 queues: Optional[Sequence[int]] = None,
                 qd: int = 8, policy: str = "round_robin",
                 fetch_lanes: Optional[int] = None,
                 default_nsid: int = DEFAULT_NSID) -> None:
        self.ssd = ssd
        self.driver = driver
        #: Namespace submissions target unless the caller overrides it.
        #: A tenant's engine facade (repro.virt) sets its private nsid
        #: here, so existing loadgen code works unmodified per tenant.
        self.default_nsid = default_nsid
        self.clock = driver.clock
        self.timing = driver.timing
        self.qids: List[int] = list(queues) if queues else list(driver.io_qids)
        for qid in self.qids:
            driver.queue(qid)  # validates existence
        #: Largest footprint any queue can ever take (SQ depths are
        #: fixed at creation), so saturation checks are one comparison.
        self._max_slots = max(driver.queue(qid).sq.depth - 1
                              for qid in self.qids)
        #: Registry lookups memoised per method name — registration is
        #: complete before an engine exists, and specs are frozen.
        self._spec_cache: dict = {}
        #: Slot footprints memoised per (method, payload length) — pure
        #: function of the method's caps and the engine's tagged mode.
        self._slots_cache: dict = {}
        self._fits_cache: dict = {}
        self.qd = qd
        self.fetch_lanes = (fetch_lanes if fetch_lanes is not None
                            else ssd.config.fetch_lanes)
        if self.fetch_lanes < 1:
            raise EngineError(f"fetch_lanes must be >= 1, got "
                              f"{self.fetch_lanes}")
        self.table = InFlightTable()
        self.scheduler = MultiQueueScheduler(self.qids, qd, policy)
        self.reactor = CompletionReactor(self)
        self.stats = EngineStats()
        #: Entries awaiting backoff expiry before resubmission.
        self.parked: List[InFlightCommand] = []
        #: Queues with submissions whose doorbell has not been rung yet.
        self._dirty: Set[int] = set()
        self._payload_ids = itertools.count(1)
        self._live_payload_ids: Set[int] = set()
        self.tagged = ssd.controller.mode == MODE_TAGGED
        #: Optional interleaving controller (repro.verify.explore.Schedule).
        #: When set, the reactor routes its arbitrary ordering decisions
        #: through ``schedule.order(label, seq)`` so the explorer can
        #: permute them; None (the default) keeps deterministic order.
        self.schedule: Optional[object] = None

    def _order(self, label: str, qids: Sequence[int]) -> Sequence[int]:
        """Apply the schedule permutation to an ordering decision."""
        if self.schedule is None:
            return qids
        ordered: Sequence[int] = self.schedule.order(label, qids)  # type: ignore[attr-defined]
        return ordered

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def submit(self, payload: bytes, method: str = dp_names.BYTEEXPRESS,
               opcode: int = IoOpcode.WRITE, cdw10: int = 0,
               cdw11: int = 0, nsid: Optional[int] = None,
               stream: Optional[int] = None) -> CommandFuture:
        """Issue one asynchronous write; returns its future immediately.

        Blocks (in simulated time) only under backpressure, reaping
        completions until the scheduler finds capacity.
        """
        spec = self._spec_cache.get(method)
        if spec is None:
            try:
                spec = datapath_registry.resolve(method)
            except datapath_registry.UnknownMethodError:
                spec = None
            else:
                self._spec_cache[method] = spec
        if spec is None or not spec.caps.engine_capable:
            raise EngineError(
                f"unknown engine method {method!r}; "
                f"expected one of {engine_methods()}")
        if not payload:
            raise EngineError("engine submissions require a payload")
        if (spec.caps.fragmented
                and not self.ssd.controller.supports(
                    VendorOpcode.BANDSLIM_FRAG)):
            raise EngineError(
                "bandslim requires the BandSlimDeviceLayer to be "
                "registered on the controller")
        future = CommandFuture(stream=stream, payload_len=len(payload))
        now = self.clock.now
        future.submit_ns = now
        entry = InFlightCommand(
            future=future, method=method, opcode=opcode, payload=payload,
            cdw10=cdw10, cdw11=cdw11,
            nsid=self.default_nsid if nsid is None else nsid, stream=stream,
            first_submit_ns=now,
            deadline_ns=now + self.driver.retry_policy.deadline_ns)
        self.stats.submitted += 1
        self._dispatch(entry)
        return future

    def submit_read(self, read_len: int, opcode: int, cdw10: int = 0,
                    cdw11: int = 0, mptr: int = 0, cdw14: int = 0,
                    cdw15: int = 0, nsid: Optional[int] = None,
                    stream: Optional[int] = None) -> CommandFuture:
        """Issue one asynchronous read-style (or keyed, data-free) command.

        The command carries no host→device payload — its operands ride
        entirely in the SQE (the NVMe-KV RETRIEVE/DELETE/EXIST/LIST
        shape: key in mptr+CDW10/11, length in CDW14).  *read_len* > 0
        allocates a private contiguous DMA buffer for the device's data
        return; the resolved future carries the returned bytes in
        ``future.data`` (trimmed to the CQE-reported result length).
        *read_len* == 0 submits a keyed command with no data phase in
        either direction (DELETE, EXIST).

        Unlike ``submit_read_prp`` on the driver — whose shared per-queue
        scratch buffer is unsafe past QD 1 — every in-flight read owns
        its buffer, so reads pipeline like writes do.
        """
        if read_len < 0:
            raise EngineError("read_len must be >= 0")
        future = CommandFuture(stream=stream, payload_len=0)
        now = self.clock.now
        future.submit_ns = now
        entry = InFlightCommand(
            future=future, method=dp_names.PRP, opcode=opcode, payload=b"",
            cdw10=cdw10, cdw11=cdw11,
            nsid=self.default_nsid if nsid is None else nsid, stream=stream,
            mptr=mptr, cdw14=cdw14, cdw15=cdw15, read_len=read_len,
            first_submit_ns=now,
            deadline_ns=now + self.driver.retry_policy.deadline_ns)
        self.stats.submitted += 1
        self._dispatch(entry)
        return future

    def _slots_needed(self, entry: InFlightCommand) -> int:
        """SQ slots the submission occupies (worst case: inline path) —
        declared by the method's registry caps."""
        if entry.is_keyed:
            return 1  # single SQE, operands in the command itself
        spec = (self._spec_cache.get(entry.method)
                or datapath_registry.resolve(entry.method))
        return spec.caps.slots_needed(len(entry.payload), tagged=self.tagged)

    def _dispatch(self, entry: InFlightCommand) -> None:
        """Place *entry* on a queue, reaping under backpressure."""
        key = (entry.method, len(entry.payload))
        need = self._slots_cache.get(key)
        if need is None:
            if len(self._slots_cache) >= 65536:
                self._slots_cache.clear()
            need = self._slots_cache[key] = self._slots_needed(entry)
        if need > self._max_slots:
            raise EngineSaturatedError(
                f"submission needs {need} SQ slots; no queue is that deep")

        # One fits-closure per distinct slot count (closures are pure
        # functions of ``need``), instead of one allocation per dispatch.
        fits = self._fits_cache.get(need)
        if fits is None:
            def fits(qid: int, _need: int = need) -> bool:
                return self.driver.queue(qid).sq.space() >= _need
            self._fits_cache[need] = fits

        guard = 0
        while True:
            qid = self.scheduler.pick(stream=entry.stream, fits=fits)
            if qid is not None:
                self._submit_entry(entry, qid)
                return
            self.stats.backpressure_waits += 1
            resolved = self.poll()
            if resolved == 0 and not self.table and not self.parked:
                raise EngineSaturatedError(
                    f"no queue can accept a {need}-slot submission and "
                    f"nothing is in flight to free capacity")
            guard = guard + 1 if resolved == 0 else 0
            if guard > 10_000:
                raise EngineError(
                    "backpressure loop made no progress (livelock)")

    def _submit_entry(self, entry: InFlightCommand, qid: int) -> None:
        """Drive one (re)submission through the driver, no doorbell."""
        if entry.is_keyed:
            self._submit_keyed(entry, qid)
            return
        method = entry.method
        spec = (self._spec_cache.get(method)
                or datapath_registry.resolve(method))
        if ((spec.caps.inline or spec.caps.fragmented)
                and not self.driver.breaker.allow_inline()):
            # Breaker open: this attempt rides the stock path instead.
            method = dp_names.PRP
            spec = datapath_registry.resolve(method)
            self.stats.inline_fallbacks += 1
            self.driver.inline_fallbacks += 1
            self.driver.link.counter.record_event(EVT_INLINE_FALLBACK)
        entry.method_used = method
        entry.attempts += 1
        entry.last_submit_ns = self.clock.now
        # The async submission API call itself (io_uring-style ioctl).
        self.clock.advance(self.timing.passthrough_ns)

        # Positional NvmeCommand construction (field order: opcode,
        # flags, cid, nsid, cdw2, cdw3, mptr, prp1, prp2, cdw10, cdw11)
        # — this allocation runs once per (re)submission.
        cmd = NvmeCommand(entry.opcode, 0, 0, entry.nsid, 0, 0, 0, 0, 0,
                          entry.cdw10, entry.cdw11)
        if spec.caps.fragmented:
            cid = self._submit_bandslim(entry, qid)
        elif spec.caps.inline:
            if self.tagged:
                pid = self._alloc_payload_id()
                cid = self.driver.submit(
                    dp_names.BYTEEXPRESS_TAGGED, cmd, entry.payload, qid,
                    ring=False, payload_id=pid)
                entry.payload_id = pid
            else:
                # Engine-capable specs always carry a host codec; calling
                # it directly skips the driver.submit resolve layer.
                cid = spec.host_codec.encode(self.driver, cmd,
                                             entry.payload, qid, ring=False)
        else:
            # Single-SQE data-pointer path (PRP): every in-flight write
            # needs its own DMA buffer at QD>1.
            cid = spec.host_codec.encode(self.driver, cmd, entry.payload,
                                         qid, ring=False,
                                         private_buffer=True)
        entry.key = (qid, cid)
        self.table.add(entry)
        self.scheduler.note_submit(qid)
        self._dirty.add(qid)

    def _submit_keyed(self, entry: InFlightCommand, qid: int) -> None:
        """(Re)submit a ``submit_read`` entry: one SQE, no data phase out.

        The read-return buffer is allocated once per entry and reused
        across timeout resubmissions — the retry must land its data in
        the same place the future's copy-out will look.
        """
        entry.method_used = entry.method
        entry.attempts += 1
        entry.last_submit_ns = self.clock.now
        # The async submission API call itself (io_uring-style ioctl).
        self.clock.advance(self.timing.passthrough_ns)
        cmd = NvmeCommand(entry.opcode, 0, 0, entry.nsid, 0, 0, entry.mptr,
                          0, 0, entry.cdw10, entry.cdw11)
        cmd.cdw14 = entry.cdw14
        cmd.cdw15 = entry.cdw15
        if entry.read_len:
            if not entry.read_pages:
                pages = self.driver.memory.alloc_pages(
                    -(-entry.read_len // PAGE_SIZE))
                entry.read_pages = tuple(pages)
            cmd.prp1 = entry.read_pages[0]
            cmd.cdw13 = entry.read_len
        cid = self.driver.submit_raw(cmd, qid, ring=False)
        entry.key = (qid, cid)
        self.table.add(entry)
        self.scheduler.note_submit(qid)
        self._dirty.add(qid)

    def _submit_bandslim(self, entry: InFlightCommand, qid: int) -> int:
        """Fragment-sequence submission; only the last fragment's CQE
        exists, so only its CID enters the table."""
        from repro.transfer.bandslim import pack_fragment

        stream_id = self._alloc_payload_id()
        entry.payload_id = stream_id
        payload = entry.payload
        cap = BANDSLIM_FRAGMENT_CAPACITY
        pieces = [payload[off:off + cap]
                  for off in range(0, len(payload), cap)]
        # The fragment-management software layer (per payload).
        self.clock.advance(self.timing.bandslim_task_host_ns)
        cid = -1
        for seq, piece in enumerate(pieces):
            last = seq == len(pieces) - 1
            frag = pack_fragment(stream_id, seq, len(payload), piece,
                                 last=last, target_opcode=entry.opcode,
                                 target_cdw10=entry.cdw10)
            self.clock.advance(self.timing.bandslim_frag_host_ns)
            cid = self.driver.submit_raw(frag, qid, ring=False,
                                        expect_completion=last)
        return cid

    def resubmit(self, entry: InFlightCommand) -> None:
        """Reactor callback: re-place a parked entry after backoff.

        Non-blocking: if every queue is saturated at this instant the
        entry re-parks and the next poll round tries again — recursing
        into the backpressure loop from inside the reactor would
        re-enter ``poll``.
        """
        need = self._slots_needed(entry)

        def fits(qid: int) -> bool:
            return self.driver.queue(qid).sq.space() >= need

        qid = self.scheduler.pick(stream=entry.stream, fits=fits)
        if qid is None:
            self.stats.backpressure_waits += 1
            entry.retry_at_ns = self.clock.now
            self.parked.append(entry)
            return
        self._submit_entry(entry, qid)

    # ------------------------------------------------------------------
    # payload-id allocation (tagged mode, BandSlim streams)
    # ------------------------------------------------------------------
    def _alloc_payload_id(self) -> int:
        while True:
            pid = next(self._payload_ids) & 0xFFFFFFFF
            if pid and pid not in self._live_payload_ids:
                self._live_payload_ids.add(pid)
                return pid

    def release_payload_id(self, pid: int) -> None:
        self._live_payload_ids.discard(pid)

    # ------------------------------------------------------------------
    # progress
    # ------------------------------------------------------------------
    def kick_dirty(self) -> None:
        """Publish every deferred tail: one doorbell MMIO per queue."""
        for qid in self._order("kick", sorted(self._dirty)):
            self.driver.kick(qid)
        self._dirty.clear()

    def poll(self) -> int:
        """One reactor round; returns futures resolved this round."""
        return self.reactor.poll()

    def drain(self) -> int:
        """Poll until nothing is in flight or parked; returns the number
        of futures resolved while draining."""
        resolved = 0
        stall = 0
        while self.table or self.parked:
            before = (len(self.table), len(self.parked), self.clock.now)
            resolved += self.poll()
            after = (len(self.table), len(self.parked), self.clock.now)
            stall = stall + 1 if after == before else 0
            if stall > 100:
                raise EngineError(
                    f"drain stalled with {len(self.table)} in flight "
                    f"and {len(self.parked)} parked")
        return resolved

    @property
    def inflight(self) -> int:
        return len(self.table)
