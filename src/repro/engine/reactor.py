"""Completion reactor: CQ draining, future resolution, recovery at QD ≫ 1.

One ``poll()`` round is the engine's heartbeat:

1. **Kick** — ring the doorbell of every queue with unpublished
   submissions (one MMIO write per queue, amortised over the batch).
2. **Drive** — run the device firmware loop to quiescence.  While N
   queues have doorbell'd work and the controller has ``fetch_lanes``
   parallel fetch/DMA engines, per-command service overlaps: the sweep
   runs under :meth:`SimClock.concurrent`, which is where multi-queue
   scaling physically comes from in the cost model.
3. **Reap** — drain every CQ phase-bit-first via ``driver.reap`` and
   resolve the matching futures out of order.  Error completions with
   DNR clear are parked for backoff and resubmission; DNR-set errors
   fail their future immediately.
4. **Recover** — entries still tabled after a quiescent drive got no
   CQE at all: re-ring their doorbells (recovers a dropped tail write),
   drive and reap again, then resubmit survivors under fresh CIDs with
   exponential backoff (recovers a dropped CQE) until the retry policy's
   attempt/deadline budget runs out.
5. **Release** — resubmit parked entries whose backoff expired; when the
   pipeline is otherwise empty, sleep the clock forward to the earliest
   ``retry_at`` so backoff consumes simulated time exactly once.

This is the asynchronous generalisation of ``NvmeDriver.passthru``'s
inline recovery loop — same policy object, same breaker, same event
taxonomy — applied to many commands concurrently.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

from repro.pcie.traffic import (
    EVT_BREAKER_TRIP,
    EVT_RETRY,
    EVT_TIMEOUT,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.engine import IoEngine
    from repro.engine.table import InFlightCommand


class CompletionReactor:
    """Drives completions for one :class:`~repro.engine.engine.IoEngine`."""

    def __init__(self, engine: "IoEngine") -> None:
        self.engine = engine

    # ------------------------------------------------------------------
    # the heartbeat
    # ------------------------------------------------------------------
    def poll(self) -> int:
        """One kick → drive → reap → recover → release round.

        Returns the number of futures resolved (successfully or not).
        """
        e = self.engine
        e.kick_dirty()
        self.drive_device()
        resolved = self.reap_all()
        if resolved == 0:
            ctrl = e.ssd.controller
            if (ctrl.qos is not None and ctrl.has_pending()
                    and not ctrl.has_pending(ready_only=True)):
                # Nothing resolved and every pending queue is
                # QoS-throttled: sweep once so the all-denied sweep
                # advances the clock to the next token-refill instant.
                # Without this, a backpressured submitter polling on a
                # throttled queue would spin on a frozen clock.
                ctrl.poll_once()
        if e.table:
            resolved += self._recover_stuck()
        self._release_parked(pipeline_idle=resolved == 0 and not e.table)
        return resolved

    # ------------------------------------------------------------------
    # device service under modelled concurrency
    # ------------------------------------------------------------------
    def drive_device(self) -> None:
        """Run the firmware loop to quiescence with parallel lanes.

        Each ``poll_once`` services one command on one queue; while K
        queues are active and the controller has L fetch lanes, that
        service overlaps min(K, L)-wide, so a sweep across K queues
        costs roughly one serial command time instead of K.
        """
        e = self.engine
        ctrl = e.ssd.controller
        conc = e.clock._concurrency
        fetch_lanes = e.fetch_lanes
        # ready_only: a QoS-throttled tenant's backlog must not make
        # this loop (and with it every tenant's poll) wait out a token
        # refill — throttled queues get serviced once sim time reaches
        # their refill instant.
        while ctrl.has_pending(ready_only=True):
            lanes = min(max(1, ctrl.active_queue_count()), fetch_lanes)
            # Inlined clock.concurrent(lanes): lanes >= 1 by the max()
            # above, so the scope's validation cannot fire; the push/pop
            # pair is all that remains of the context manager.
            conc.append(float(lanes))
            try:
                ctrl.poll_once()
            finally:
                conc.pop()
        # The device ran dry: flush coalesced completions before the
        # reap phase and, under shadow doorbells, publish the park
        # record so the host knows when a BAR wake becomes necessary.
        ctrl.quiesce()

    # ------------------------------------------------------------------
    # completion harvesting
    # ------------------------------------------------------------------
    def reap_all(self) -> int:
        resolved = 0
        e = self.engine
        qids = e.qids if e.schedule is None else e._order("reap", e.qids)
        reap = e.driver.reap
        for qid in qids:
            for cqe in reap(qid):
                resolved += self._on_cqe(qid, cqe)
        return resolved

    def _on_cqe(self, qid: int, cqe) -> int:
        e = self.engine
        entry = e.table.pop((qid, cqe.cid))
        if entry is None:
            # A CQE for a command the engine already abandoned (its
            # delayed completion raced our timeout resubmission).  The
            # driver has retired the CID; nothing to resolve.
            e.stats.stale_completions += 1
            return 0
        e.scheduler.note_complete(qid)
        if entry.payload_id is not None:
            e.release_payload_id(entry.payload_id)
        breaker = e.driver.breaker
        if cqe.ok:
            if entry.is_inline:
                breaker.record_success()
            self._finish_read(entry, cqe)
            entry.resolve(cqe, e.clock.now)
            e.stats.completed += 1
            return 1
        if entry.is_inline and cqe.retryable:
            trips_before = breaker.trips
            breaker.record_failure()
            if breaker.trips > trips_before:
                e.stats.breaker_trips += 1
                e.driver.link.counter.record_event(EVT_BREAKER_TRIP)
        if cqe.retryable and self._park_for_retry(entry):
            return 0
        self._finish_read(entry, None)
        entry.resolve(cqe, e.clock.now)
        e.stats.failed += 1
        return 1

    def _finish_read(self, entry: "InFlightCommand", cqe) -> None:
        """Terminal read handling: copy the device's data return out of
        the entry's private DMA buffer into the future (success only),
        then free the buffer.  Parked retries keep the buffer — the
        resubmission lands its data in the same pages."""
        if not entry.read_pages:
            return
        if cqe is not None and cqe.ok:
            want = min(cqe.result, entry.read_len)
            if want > 0:
                entry.future.data = self.engine.driver.memory.read(
                    entry.read_pages[0], want)
            else:
                entry.future.data = b""
        entry.release_read_buffer(self.engine.driver.memory)

    # ------------------------------------------------------------------
    # timeout recovery
    # ------------------------------------------------------------------
    def _recover_stuck(self) -> int:
        """Handle entries that survived a quiescent drive with no CQE."""
        e = self.engine
        stuck: List["InFlightCommand"] = e.table.entries()
        # First line of defence: republish every affected tail.  This is
        # idempotent and exactly recovers a dropped doorbell write — the
        # SQEs are in host memory, the device just never saw the tail.
        # Entries the re-ring recovers were stalled, not timed out, so
        # they are charged as ``re_rings`` only; timeouts are charged
        # below, to the entries still tabled after the retried drive.
        for qid in sorted({entry.key[0] for entry in stuck}):
            e.driver.kick(qid)
            e.stats.re_rings += 1
        self.drive_device()
        resolved = self.reap_all()

        # Whatever is still tabled lost its completion for good (dropped
        # CQE): the command may or may not have executed, so charge the
        # timeout, abandon the CID and resubmit from scratch — writes
        # are idempotent here.  Exception: a queue that still holds
        # unfetched SQEs after a (ready-only) drive is QoS-throttled,
        # not stuck — its completions arrive once the tokens refill, so
        # recovery for its entries waits until the queue itself drains.
        ctrl = e.ssd.controller
        lost = [entry for entry in e.table.entries()
                if ctrl._pending_on(entry.key[0]) == 0]
        e.stats.timeouts += len(lost)
        e.driver.timeouts += len(lost)
        if lost:
            e.driver.link.counter.record_event(EVT_TIMEOUT, len(lost))
        for entry in lost:
            e.table.pop(entry.key)
            e.scheduler.note_complete(entry.key[0])
            e.driver.retire(*entry.key)
            if entry.payload_id is not None:
                e.ssd.controller.abort_payload(entry.payload_id)
                e.release_payload_id(entry.payload_id)
            entry.key = None
            entry.payload_id = None
            if not self._park_for_retry(entry):
                entry.release_read_buffer(e.driver.memory)
                entry.fail(None, e.clock.now)
                e.stats.failed += 1
                resolved += 1
        return resolved

    # ------------------------------------------------------------------
    # backoff / resubmission
    # ------------------------------------------------------------------
    def _park_for_retry(self, entry: "InFlightCommand") -> bool:
        """Queue *entry* for resubmission after exponential backoff.

        Returns False when the retry budget (attempts or deadline) is
        exhausted — the caller must fail the future.
        """
        e = self.engine
        policy = e.driver.retry_policy
        if entry.attempts >= policy.max_attempts:
            return False
        backoff_ns = policy.backoff_ns(entry.attempts)
        if e.clock.now + backoff_ns > entry.deadline_ns:
            return False
        if entry.key is not None:
            # Parked off an error CQE: the CID already retired via reap.
            entry.key = None
            entry.payload_id = None
        entry.retry_at_ns = e.clock.now + backoff_ns
        e.parked.append(entry)
        e.stats.retries += 1
        e.driver.retries += 1
        e.driver.link.counter.record_event(EVT_RETRY)
        return True

    def _release_parked(self, pipeline_idle: bool) -> None:
        e = self.engine
        if not e.parked:
            return
        if pipeline_idle and not e.table:
            # Nothing in flight to absorb the wait: backoff is the only
            # thing standing between now and progress, so sleep to the
            # earliest resubmission point.
            e.clock.advance_to(min(p.retry_at_ns for p in e.parked))
        ready = [p for p in e.parked if p.retry_at_ns <= e.clock.now]
        if not ready:
            return
        e.parked = [p for p in e.parked if p.retry_at_ns > e.clock.now]
        if e.schedule is not None:
            ready = e.schedule.order("parked", ready)
        for entry in ready:
            e.resubmit(entry)
