"""Pre-wired testbeds: one call builds the full simulated rig.

Each factory assembles the stack the paper's corresponding experiment ran
on — OpenSSD model, device personality, host driver, and the transfer
method suite — sharing one clock and one traffic counter so measurements
are end-to-end consistent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.csd.pushdown import CsdPersonality
from repro.host.driver import NvmeDriver
from repro.kvssd.kvssd import KvSsdPersonality
from repro.sim.config import SimConfig
from repro.ssd.controller import MODE_QUEUE_LOCAL
from repro.ssd.device import BlockSsdPersonality, OpenSsd
from repro.transfer import TransferMethod, make_methods


@dataclass
class Testbed:
    """A complete simulated host + SSD pair."""

    ssd: OpenSsd
    driver: NvmeDriver
    methods: Dict[str, TransferMethod]
    #: The active device personality (block / KV / CSD object).
    personality: object
    #: Protocol monitor, when ``REPRO_VERIFY`` is set (else None).
    monitor: Optional[object] = None

    @property
    def clock(self):
        return self.ssd.clock

    @property
    def traffic(self):
        return self.ssd.traffic

    def method(self, name: str) -> TransferMethod:
        try:
            return self.methods[name]
        except KeyError:
            raise KeyError(f"unknown transfer method {name!r}; "
                           f"have {sorted(self.methods)}")

    def unmonitor(self) -> "Testbed":
        """Detach the ``REPRO_VERIFY`` protocol monitor, if armed.

        For tests that *forge* protocol violations (torn shadow
        stores, malformed inline lengths) to probe device robustness:
        the monitor flagging those is correct, but they are the test's
        subject, not a bug.  Returns self for chaining.
        """
        if self.monitor is not None:
            self.monitor.detach()  # type: ignore[attr-defined]
            self.monitor = None
        return self

    def make_engine(self, queues: Optional[int] = None, qd: int = 8,
                    policy: str = "round_robin",
                    fetch_lanes: Optional[int] = None):
        """Build an :class:`~repro.engine.IoEngine` over this rig.

        *queues* limits the engine to the first N of the rig's I/O
        queues (default: all of them).
        """
        from repro.engine import IoEngine

        qids = self.driver.io_qids
        if queues is not None:
            if not 1 <= queues <= len(qids):
                raise ValueError(
                    f"rig has {len(qids)} I/O queues, cannot run on "
                    f"{queues}")
            qids = qids[:queues]
        engine = IoEngine(self.ssd, self.driver, queues=qids, qd=qd,
                          policy=policy, fetch_lanes=fetch_lanes)
        if self.monitor is not None:
            self.monitor.attach_engine(engine)  # type: ignore[attr-defined]
        return engine

    def make_service(self, queues: Optional[int] = None, qd: int = 8,
                     policy: str = "round_robin", **service_kwargs):
        """Build a :class:`~repro.kvssd.KvService` over this rig.

        Constructs the async engine (monitored under ``REPRO_VERIFY``)
        and the serving front-end bound to the rig's KV personality;
        *service_kwargs* pass through to :class:`KvService` (method,
        batch window, cache size, ...).  When the monitor is armed and
        the cache is enabled, every cache hit is shadow-read from the
        device (the INV_CACHE_COHERENT oracle).
        """
        from repro.kvssd.service import KvService

        engine = self.make_engine(queues=queues, qd=qd, policy=policy)
        service = KvService(engine, personality=self.personality,
                            **service_kwargs)
        if self.monitor is not None and service.cache is not None:
            self.monitor.attach_service(service)  # type: ignore[attr-defined]
        return service


def _finish(tb: Testbed) -> Testbed:
    """Arm the protocol monitor when ``REPRO_VERIFY`` asks for it."""
    from repro.verify import maybe_attach

    tb.monitor = maybe_attach(tb)
    return tb


def make_block_testbed(config: Optional[SimConfig] = None,
                       mode: str = MODE_QUEUE_LOCAL,
                       include_mmio: bool = True,
                       fault_plan=None) -> Testbed:
    """Block-SSD rig: the Figure 1(b)/1(c)/5 microbenchmark setup.

    *fault_plan* (a :class:`repro.faults.FaultPlan`) arms deterministic
    fault injection on the rig's link, firmware, and driver.
    """
    ssd = OpenSsd(config or SimConfig().nand_off(), mode=mode,
                  fault_plan=fault_plan)
    personality = BlockSsdPersonality(ssd)
    driver = NvmeDriver(ssd)
    methods = make_methods(ssd, driver, include_mmio=include_mmio)
    return _finish(Testbed(ssd=ssd, driver=driver, methods=methods,
                           personality=personality))


def make_engine_testbed(queues: int = 4,
                        config: Optional[SimConfig] = None,
                        mode: str = MODE_QUEUE_LOCAL,
                        include_mmio: bool = False,
                        fault_plan=None) -> Testbed:
    """Block-SSD rig sized for the asynchronous engine's scaling runs.

    Unless an explicit *config* is given, the rig gets exactly *queues*
    I/O queue pairs with NAND off — the configuration the queue-count ×
    queue-depth ablation sweeps.  Combine with
    :meth:`Testbed.make_engine` to obtain the engine itself.
    """
    cfg = config or SimConfig(num_io_queues=queues).nand_off()
    if cfg.num_io_queues < queues:
        raise ValueError(f"config has {cfg.num_io_queues} I/O queues, "
                         f"engine rig needs {queues}")
    return make_block_testbed(config=cfg, mode=mode,
                              include_mmio=include_mmio,
                              fault_plan=fault_plan)


def make_virt_testbed(max_queues: int = 1024,
                      host_queues: int = 1,
                      config: Optional[SimConfig] = None,
                      fault_plan=None) -> Testbed:
    """Block-SSD rig sized for multi-tenant provisioning at scale.

    The controller advertises *max_queues* I/O queue pairs (the stock
    Cosmos+-class identify page caps at 16, far too few for hundreds
    of tenants), while the host brings up only *host_queues* for
    itself — every further pair is created on demand by the
    :class:`~repro.virt.TenantManager`.  Rings default to depth 64 so
    hundreds of queue pairs stay cheap, and MMIO doorbells (the config
    default) put no ceiling on qids (the shadow page stops at
    ``MAX_QID``).
    """
    from repro.nvme.identify import IdentifyController

    cfg = config or SimConfig(num_io_queues=host_queues, sq_depth=64,
                              cq_depth=64).nand_off()
    if not 1 <= cfg.num_io_queues <= max_queues:
        raise ValueError(f"host bring-up queues ({cfg.num_io_queues}) "
                         f"exceed the advertised limit {max_queues}")
    ssd = OpenSsd(cfg, fault_plan=fault_plan)
    # Before the driver's bring-up IDENTIFY reads it.
    ssd.controller.identify_data = IdentifyController(
        num_io_queues=max_queues)
    personality = BlockSsdPersonality(ssd)
    driver = NvmeDriver(ssd)
    methods = make_methods(ssd, driver, include_mmio=False)
    return _finish(Testbed(ssd=ssd, driver=driver, methods=methods,
                           personality=personality))


def make_kv_testbed(config: Optional[SimConfig] = None,
                    memtable_entries: int = 4096,
                    include_mmio: bool = False,
                    fault_plan=None) -> Testbed:
    """KV-SSD rig with NAND enabled: the Figure 6 setup."""
    ssd = OpenSsd(config or SimConfig(), fault_plan=fault_plan)
    personality = KvSsdPersonality(ssd, memtable_entries=memtable_entries)
    driver = NvmeDriver(ssd)
    methods = make_methods(ssd, driver, include_mmio=include_mmio)
    return _finish(Testbed(ssd=ssd, driver=driver, methods=methods,
                           personality=personality))


def make_csd_testbed(config: Optional[SimConfig] = None,
                     execute_inline: bool = True,
                     include_mmio: bool = False,
                     fault_plan=None) -> Testbed:
    """CSD rig: the Figure 7 pushdown setup."""
    ssd = OpenSsd(config or SimConfig().nand_off(), fault_plan=fault_plan)
    personality = CsdPersonality(ssd, execute_inline=execute_inline)
    driver = NvmeDriver(ssd)
    methods = make_methods(ssd, driver, include_mmio=include_mmio)
    return _finish(Testbed(ssd=ssd, driver=driver, methods=methods,
                           personality=personality))
