#!/usr/bin/env python3
"""Transfer-method explorer: sweep payload sizes, find the crossovers.

Regenerates the Figure-5 sweep interactively, prints the per-size winner,
locates the ByteExpress/PRP crossover, and demonstrates the paper's §4.2
hybrid remedy and the §3.3.2 tagged out-of-order variant.

Run:  python examples/transfer_explorer.py [--gen N]
"""

import argparse

from repro import LinkConfig, SimConfig, make_block_testbed
from repro.metrics import format_table
from repro.ssd.controller import MODE_TAGGED
from repro.testbed import make_block_testbed as _mk
from repro.transfer.byteexpress import TaggedByteExpressTransfer

SIZES = (32, 64, 128, 256, 512, 1024, 2048, 4096)
METHODS = ("prp", "sgl", "bandslim", "byteexpress", "hybrid")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--gen", type=int, default=2,
                        help="PCIe generation (paper testbed: 2)")
    args = parser.parse_args()

    cfg = SimConfig(link=LinkConfig(generation=args.gen)).nand_off()
    tb = make_block_testbed(config=cfg)
    print(f"PCIe Gen{args.gen} x{cfg.link.lanes} — "
          f"{cfg.link.bytes_per_ns:.1f} GB/s effective\n")

    rows = []
    crossover = None
    for size in SIZES:
        latencies = {m: tb.method(m).write(bytes(size), cdw10=0).latency_ns
                     for m in METHODS}
        winner = min(latencies, key=latencies.get)
        if crossover is None and latencies["byteexpress"] > latencies["prp"]:
            crossover = size
        rows.append([size] + [f"{latencies[m] / 1000:.2f}" for m in METHODS]
                    + [winner])
    print(format_table(["payload (B)"] + [f"{m} us" for m in METHODS]
                       + ["winner"], rows,
                       title="latency by method and size"))
    print(f"\nByteExpress/PRP crossover: "
          f"{'none in range' if crossover is None else f'{crossover} B'} "
          f"(paper: around 256 B on Gen2)")

    # Tagged out-of-order variant (paper §3.3.2 future work).
    tagged_tb = _mk(mode=MODE_TAGGED)
    tagged = TaggedByteExpressTransfer(tagged_tb.driver)
    size = 512
    local = tb.method("byteexpress").write(bytes(size))
    ooo = tagged.write(bytes(size))
    print(f"\ntagged reassembly overhead at {size} B: "
          f"{local.pcie_bytes} -> {ooo.pcie_bytes} wire bytes "
          f"(8 B/chunk headers)")


if __name__ == "__main__":
    main()
