#!/usr/bin/env python3
"""CSD scenario (paper §4.3, Figure 7): SQL predicate pushdown.

Loads the Figure-4 query corpus tables into the simulated computational
SSD, pushes each filter down both as the full SQL string and as the
table+predicate segment, and compares the transfer cost per method.
The filters actually execute in-device; matching rows come back over NVMe.

Run:  python examples/sql_pushdown.py
"""

from repro import CORPUS, CsdClient, make_csd_testbed
from repro.metrics import format_table


def main() -> None:
    tb = make_csd_testbed()
    setup = CsdClient(tb.driver, tb.method("prp"))  # bulk load: PRP's job
    rows_per_table = 300
    for query in CORPUS:
        setup.create_table(query.schema)
        setup.load_rows(query.schema, query.make_rows(rows_per_table, seed=3))
    print(f"loaded {len(CORPUS)} tables x {rows_per_table} rows "
          f"into the CSD\n")

    rows = []
    for query in CORPUS:
        for form, message in (("full", query.full_sql),
                              ("segment", query.segment)):
            cells = [f"{query.name}/{form}", len(message.encode())]
            for method in ("prp", "bandslim", "byteexpress"):
                client = CsdClient(tb.driver, tb.method(method))
                stats = client.pushdown(message)
                client.fetch_results(query.schema, max_len=48 * 1024)
                cells.append(f"{stats.pcie_bytes}")
            rows.append(cells)
    print(format_table(
        ["task/form", "msg B", "prp B", "bandslim B", "byteexpress B"],
        rows, title="Figure 7 scenario — pushdown task transfer cost"))

    # Show one filter's actual results.
    query = CORPUS[0]
    client = CsdClient(tb.driver, tb.method("byteexpress"))
    client.pushdown(query.segment)
    matches = client.fetch_results(query.schema, max_len=48 * 1024)
    print(f"\n{query.segment!r} matched {len(matches)}/{rows_per_table} "
          f"rows; first: {matches[0]}")


if __name__ == "__main__":
    main()
