#!/usr/bin/env python3
"""Record a workload trace, then replay it through every transfer method.

Method comparisons are only meaningful on identical operation streams —
this is how the paper replays the same 1 M-op workloads through PRP,
BandSlim and ByteExpress.  The trace tooling makes that reproducible for
*your* workload: capture once, replay everywhere.

Run:  python examples/trace_replay.py
"""

import tempfile
from pathlib import Path

from repro import KVStore, MixGraphWorkload, make_kv_testbed
from repro.metrics import format_table
from repro.workloads import TraceRecorder, dump_trace, load_trace


def main() -> None:
    trace_path = Path(tempfile.mkdtemp()) / "workload.jsonl"

    # 1. Record: wrap a live store with the recorder.
    tb = make_kv_testbed()
    recorder = TraceRecorder(KVStore(tb.driver, tb.method("byteexpress")))
    for op in MixGraphWorkload(ops=300, seed=0xACE):
        recorder.put(op.key, op.value)
    recorder.get(recorder.ops[0].key)
    count = recorder.save(trace_path)
    print(f"recorded {count} ops to {trace_path}")

    # 2. Replay the identical stream through each method.
    rows = []
    for method in ("prp", "bandslim", "byteexpress", "hybrid"):
        tb = make_kv_testbed()
        store = KVStore(tb.driver, tb.method(method))
        t0, b0 = tb.clock.now, tb.traffic.total_bytes
        ops = 0
        for op in load_trace(trace_path):
            if op.op == "put":
                store.put(op.key, op.value)
            elif op.op == "get":
                store.get(op.key, max_value_len=65536)
            ops += 1
        elapsed = tb.clock.now - t0
        rows.append([method, ops,
                     f"{(tb.traffic.total_bytes - b0) / ops:.0f}",
                     f"{ops / elapsed * 1e6:.1f}"])
    print(format_table(["method", "ops", "PCIe B/op", "Kops/s"], rows,
                       title="identical trace, four transfer methods"))


if __name__ == "__main__":
    main()
