#!/usr/bin/env python3
"""Protocol introspection: watch ByteExpress on the wire.

Uses the nvme-cli-style tooling to show exactly what the mechanism does:
the command with its repurposed reserved field sitting in the submission
queue, the chunk entries behind it, the controller's view, and the
traffic ledger afterwards — the paper's Figure 3(d), live.

Run:  python examples/device_introspection.py
"""

from repro import make_block_testbed
from repro.nvme.command import NvmeCommand
from repro.nvme.constants import IoOpcode
from repro.tools import dump_controller, dump_queue, dump_traffic


def main() -> None:
    tb = make_block_testbed()
    payload = b"an inline payload riding the submission queue" * 3  # 138 B

    print("=== submit (not yet processed) " + "=" * 30)
    tb.driver.submit_write_inline(
        NvmeCommand(opcode=IoOpcode.WRITE, cdw10=0), payload, qid=1)
    print(dump_queue(tb.driver, qid=1))

    print("\n=== controller before/after " + "=" * 33)
    print(dump_controller(tb.ssd))
    tb.ssd.controller.process_all()
    cqe = tb.driver.wait(1)
    print("completion status:", hex(cqe.status))
    print(dump_controller(tb.ssd))

    print("\n=== payload landed " + "=" * 42)
    got = tb.personality.read_back(0, len(payload))
    print(f"device DRAM holds {len(got)} B, byte-exact: {got == payload}")

    print("\n=== traffic ledger " + "=" * 42)
    print(dump_traffic(tb.ssd))

    print("\n=== batched submission (one doorbell, 8 ops) " + "=" * 16)
    result = tb.driver.write_batch([b"batch!" * 10] * 8,
                                   opcode=IoOpcode.WRITE)
    print(f"8 writes: {result.elapsed_ns / 1000:.2f} us total, "
          f"{result.mean_latency_ns / 1000:.2f} us/op, all ok={result.ok}")


if __name__ == "__main__":
    main()
