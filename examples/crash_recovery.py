#!/usr/bin/env python3
"""Crash recovery demo: durable KV semantics on the simulated KV-SSD.

Fine-grained per-PUT persistence is one of the workload patterns the
paper motivates ByteExpress with (§2.2: Redis appendfsync-always, etcd
raft logs).  This example PUTs a workload through ByteExpress, yanks the
power, and shows the device rebuilding its index from the NAND-resident
value log — including durable tombstones for deletes.

Run:  python examples/crash_recovery.py
"""

from repro import KVStore, MixGraphWorkload, make_kv_testbed


def main() -> None:
    tb = make_kv_testbed(memtable_entries=64)
    store = KVStore(tb.driver, tb.method("byteexpress"))

    latest = {}
    for op in MixGraphWorkload(ops=400, seed=0xDEAD, key_space=150):
        store.put(op.key, op.value)
        latest[op.key] = op.value
    doomed = sorted(latest)[:10]
    for key in doomed:
        store.delete(key)
        del latest[key]
    print(f"state before crash: {len(latest)} live keys, "
          f"{len(doomed)} deleted, "
          f"{tb.personality.vlog.flushes} log segments on NAND")

    live = tb.personality.crash_and_recover()
    print(f"power failure!  recovery replayed the value log -> "
          f"{live} live keys")
    assert live == len(latest)

    errors = 0
    for key, value in latest.items():
        if store.get(key, max_value_len=65536) != value:
            errors += 1
    for key in doomed:
        if store.exists(key):
            errors += 1
    print(f"verification: {len(latest)} values byte-exact, "
          f"{len(doomed)} deletions honoured, {errors} errors")

    store.put(b"post-crash-key-1", b"business as usual")
    print(f"store is live again: "
          f"{store.get(b'post-crash-key-1').decode()!r}")


if __name__ == "__main__":
    main()
