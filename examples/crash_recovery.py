#!/usr/bin/env python3
"""Crash recovery demo: seeded power cuts against the durability harness.

Fine-grained per-PUT persistence is one of the workload patterns the
paper motivates ByteExpress with (§2.2: Redis appendfsync-always, etcd
raft logs).  This example uses the crash-and-recover harness from
``repro.durability``: each run arms a seeded :class:`CrashPlan` on the
rig's fault injector, drives acknowledged KV writes until the power
dies mid-protocol-action, then reboots the host, replays the value log
to the durable watermark, and checks every *acknowledged* write
against a timing-free device oracle.

Three arms:

1. a power cut at a seeded TLP boundary with power-loss protection —
   every acked write must survive;
2. the same cut during CQE delivery, through the command-less
   ``pio_coherent`` datapath — durability is a property of the device,
   not of one transfer method;
3. the deliberately lossy arm: PLP disabled, so the device reboots from
   a stale checkpoint and the harness *reports* the acked writes it
   lost (under ``REPRO_VERIFY=1`` this raises ``INV_DURABLE_ACK``).

Run:  python examples/crash_recovery.py
"""

from repro.durability.harness import CrashSpec, run_crash
from repro.faults.plan import CUT_CQE, CUT_TLP, CrashPlan


def show(title: str, report) -> None:
    print(f"--- {title}")
    print(f"    {report.label}")
    print(f"    cut fired={report.cut_fired}  issued={report.issued}  "
          f"acked before cut={report.acked}")
    print(f"    scrubbed domains: {', '.join(report.scrubbed)}")
    print(f"    recovery replayed {report.recovered_keys} live keys "
          f"in {report.recovery_ns / 1000:.1f} us")
    verdict = ("every acknowledged write survived" if report.ok else
               f"LOST {len(report.lost)} acked writes, "
               f"{len(report.torn)} torn findings")
    print(f"    verdict: {verdict}")
    print()


def main() -> None:
    # Arm 1: die while a TLP is crossing the link, mid-workload.  The
    # capacitor (plp=True) flushes the active value-log segment and
    # journals fresh metadata before volatile state is scrubbed.
    spec = CrashSpec(plane="kv", method="byteexpress", qd=1, ops=12,
                     payload_bytes=256, cut=CrashPlan(CUT_TLP, 30))
    report = run_crash(spec)
    show("power cut at TLP #30 (ByteExpress, PLP)", report)
    assert report.cut_fired and report.ok

    # Arm 2: the same contract through a different datapath and a
    # different protocol action — power dies as a CQE is being posted.
    spec = CrashSpec(plane="kv", method="byteexpress", qd=1, ops=12,
                     payload_bytes=256, cut=CrashPlan(CUT_CQE, 5))
    report = run_crash(spec)
    show("power cut at CQE #5 (ByteExpress, PLP)", report)
    assert report.cut_fired and report.ok

    # pio_coherent has no doorbells and no CQEs by construction, so a
    # TLP cut is the only place it can die.
    spec = CrashSpec(plane="kv", method="pio_coherent", qd=1, ops=12,
                     payload_bytes=256, cut=CrashPlan(CUT_TLP, 20))
    report = run_crash(spec)
    show("power cut at TLP #20 (pio_coherent, PLP)", report)
    assert report.cut_fired and report.ok

    # Arm 3: no capacitor.  The device boots from its boot-time
    # checkpoint; acked-but-unflushed writes are genuinely gone, and
    # the harness says so instead of pretending.
    spec = CrashSpec(plane="kv", method="byteexpress", qd=1, ops=12,
                     payload_bytes=256, cut=CrashPlan(CUT_TLP, 30),
                     plp=False)
    report = run_crash(spec)
    show("the same cut WITHOUT power-loss protection", report)
    assert report.cut_fired and not report.ok
    print(f"without PLP the device lost {len(report.lost)} acknowledged "
          f"writes — exactly what INV_DURABLE_ACK exists to catch "
          f"(re-run with REPRO_VERIFY=1 to see it raise).")


if __name__ == "__main__":
    main()
