#!/usr/bin/env python3
"""KV-SSD scenario (paper §4.3, Figure 6): MixGraph PUTs with NAND on.

Runs a Meta-like MixGraph PUT stream (GPD value sizes, >60 % under 32 B)
against the simulated LSM KV-SSD through PRP, BandSlim, and ByteExpress,
then prints per-method traffic and throughput plus the LSM engine's
internal activity — the workload class that motivates ByteExpress.

Run:  python examples/kvssd_mixgraph.py [ops]
"""

import sys

from repro import KVStore, MixGraphWorkload, make_kv_testbed
from repro.metrics import format_table
from repro.workloads import fraction_below, sample_value_sizes


def run_method(method_name: str, ops: int):
    tb = make_kv_testbed()
    store = KVStore(tb.driver, tb.method(method_name))
    start_ns = tb.clock.now
    start_bytes = tb.traffic.total_bytes
    for op in MixGraphWorkload(ops=ops, seed=0xF16):
        store.put(op.key, op.value)
    elapsed = tb.clock.now - start_ns
    kv = tb.personality
    return {
        "traffic": (tb.traffic.total_bytes - start_bytes) / ops,
        "kops": ops / elapsed * 1e6,
        "lsm_flushes": kv.index.flushes,
        "vlog_flushes": kv.vlog.flushes,
        "nand_programs": tb.ssd.nand.programs,
    }, tb, store


def main() -> None:
    ops = int(sys.argv[1]) if len(sys.argv) > 1 else 1000
    sizes = sample_value_sizes(ops, seed=0xF16)
    print(f"MixGraph: {ops} PUTs, "
          f"{fraction_below(sizes, 32) * 100:.0f}% of values under 32 B "
          f"(paper: >60%)\n")

    rows = []
    last = None
    for method in ("prp", "bandslim", "byteexpress"):
        result, tb, store = run_method(method, ops)
        last = (tb, store)
        rows.append([method, f"{result['traffic']:.0f}",
                     f"{result['kops']:.1f}", result["lsm_flushes"],
                     result["vlog_flushes"], result["nand_programs"]])
    print(format_table(
        ["PUT path", "PCIe B/op", "Kops/s", "LSM flushes", "vlog flushes",
         "NAND programs"],
        rows, title="Figure 6(a) scenario — KV-SSD, NAND enabled"))

    # The store is a real KV engine: read your data back.
    tb, store = last
    probe = next(iter(MixGraphWorkload(ops=1, seed=0xF16)))
    value = store.get(probe.key, max_value_len=64 * 1024)
    print(f"\nget({probe.key!r}) -> {len(value)} B (verified)")
    scan = list(tb.personality.scan(b"\x00" * 16, b"\xff" * 16))
    print(f"full-range device-side scan: {len(scan)} live keys")


if __name__ == "__main__":
    main()
