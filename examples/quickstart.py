#!/usr/bin/env python3
"""Quickstart: write small payloads through every transfer method.

Builds the simulated testbed (OpenSSD + NVMe driver, the paper's Figure 3
environment), writes one payload through each mechanism, and prints what
it cost in PCIe bytes and latency — a one-screen version of Figure 5.

Run:  python examples/quickstart.py
"""

from repro import make_block_testbed
from repro.metrics import format_table


def main() -> None:
    tb = make_block_testbed()  # NAND off: the paper's transfer microbench
    payload = b"a key-value pair or SQL predicate, say 64B!"  # 44 bytes
    print(f"payload: {len(payload)} bytes\n")

    rows = []
    for name in ("prp", "sgl", "bandslim", "mmio", "byteexpress", "hybrid"):
        stats = tb.method(name).write(payload, cdw10=0)
        assert stats.ok
        rows.append([name, f"{stats.pcie_bytes}",
                     f"{stats.amplification:.1f}x",
                     f"{stats.latency_ns / 1000:.2f}",
                     stats.commands])
        # The payload really landed on the device, whatever the path:
        assert tb.personality.read_back(0, len(payload)) == payload

    print(format_table(
        ["method", "PCIe bytes", "amplification", "latency (us)",
         "NVMe cmds"],
        rows, title="one small write, six transfer mechanisms"))

    print("\nPCIe traffic breakdown for the whole run:")
    for category, nbytes in tb.traffic.breakdown().items():
        print(f"  {category:>14s}: {nbytes:6d} B")

    prp = tb.method("prp").write(payload, cdw10=0)
    be = tb.method("byteexpress").write(payload, cdw10=0)
    print(f"\nByteExpress vs PRP at {len(payload)} B: "
          f"{(1 - be.pcie_bytes / prp.pcie_bytes) * 100:.1f}% less traffic, "
          f"{(1 - be.latency_ns / prp.latency_ns) * 100:.1f}% lower latency")


if __name__ == "__main__":
    main()
